//! Deterministic message transport with a distance-based cost ledger.
//!
//! The one-by-one case needs no timing model — a single operation's
//! messages are causally chained — so delivery is FIFO. Every delivered
//! message is billed its shortest-path distance under its payload kind;
//! the ledger separates charged protocol traffic from uncharged
//! bookkeeping (special-parent updates, repoints) and from query replies.

use crate::message::{Message, Payload};
use mot_net::DistanceOracle;
use std::collections::{HashMap, VecDeque};

/// Per-kind accumulated message distance.
#[derive(Clone, Debug, Default)]
pub struct CostLedger {
    by_kind: HashMap<&'static str, f64>,
    /// Total distance of charged messages since the last reset.
    pub charged: f64,
    /// Number of messages delivered since the last reset.
    pub messages: usize,
}

impl CostLedger {
    /// Distance accumulated under a payload kind.
    pub fn of_kind(&self, kind: &str) -> f64 {
        self.by_kind.get(kind).copied().unwrap_or(0.0)
    }

    fn bill(&mut self, payload: &Payload, dist: f64) {
        *self.by_kind.entry(payload.kind()).or_insert(0.0) += dist;
        if payload.charged() {
            self.charged += dist;
        }
        self.messages += 1;
    }

    /// Clears the per-operation counters.
    pub fn reset(&mut self) {
        self.by_kind.clear();
        self.charged = 0.0;
        self.messages = 0;
    }
}

/// FIFO message queue between sensor nodes.
#[derive(Debug, Default)]
pub struct Transport {
    queue: VecDeque<Message>,
    pub ledger: CostLedger,
}

impl Transport {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a message.
    pub fn send(&mut self, msg: Message) {
        self.queue.push_back(msg);
    }

    /// Enqueues a batch.
    pub fn send_all(&mut self, msgs: impl IntoIterator<Item = Message>) {
        for m in msgs {
            self.send(m);
        }
    }

    /// Pops the next message, billing its travel distance.
    pub fn deliver(&mut self, oracle: &dyn DistanceOracle) -> Option<Message> {
        let msg = self.queue.pop_front()?;
        let dist = oracle.dist(msg.src, msg.dst);
        self.ledger.bill(&msg.payload, dist);
        Some(msg)
    }

    /// True when no messages remain in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

/// A message scheduled for timed delivery.
#[derive(Debug)]
struct Scheduled {
    deliver_at: f64,
    seq: u64,
    msg: Message,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap on (time, seq)
        other
            .deliver_at
            .partial_cmp(&self.deliver_at)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Timed message transport for concurrent (batched) executions: message
/// latency equals message distance, and a climb/query entering level `i`
/// waits for the end of the current period `Φ(i) = period_base · 2^i`
/// (§4.1.2's forwarding discipline; `period_base = 0` disables gating).
#[derive(Debug)]
pub struct TimedTransport {
    heap: std::collections::BinaryHeap<Scheduled>,
    seq: u64,
    /// Simulation clock: the delivery time of the last popped message.
    pub now: f64,
    pub period_base: f64,
    pub ledger: CostLedger,
}

impl TimedTransport {
    pub fn new(period_base: f64) -> Self {
        TimedTransport {
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            period_base,
            ledger: CostLedger::default(),
        }
    }

    /// Schedules `msg` sent at time `sent_at`.
    pub fn send_at(&mut self, msg: Message, sent_at: f64, oracle: &dyn DistanceOracle) {
        let mut deliver_at = sent_at + oracle.dist(msg.src, msg.dst);
        if self.period_base > 0.0 {
            if let Some(level) = msg.payload.level_entry() {
                let phi = self.period_base * (1u64 << level) as f64;
                deliver_at = (deliver_at / phi).ceil() * phi;
            }
        }
        self.heap.push(Scheduled {
            deliver_at,
            seq: self.seq,
            msg,
        });
        self.seq += 1;
    }

    /// Pops the earliest message, advancing the clock and billing its
    /// distance.
    pub fn deliver(&mut self, oracle: &dyn DistanceOracle) -> Option<Message> {
        let Scheduled {
            deliver_at, msg, ..
        } = self.heap.pop()?;
        debug_assert!(deliver_at >= self.now - 1e-9, "time ran backwards");
        self.now = self.now.max(deliver_at);
        self.ledger
            .bill(&msg.payload, oracle.dist(msg.src, msg.dst));
        Some(msg)
    }

    /// True when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_core::ObjectId;
    use mot_net::DenseOracle;
    use mot_net::{generators, NodeId};

    fn msg(src: u32, dst: u32, payload: Payload) -> Message {
        Message {
            src: NodeId(src),
            dst: NodeId(dst),
            payload,
        }
    }

    #[test]
    fn deliveries_are_fifo_and_billed_by_distance() {
        let g = generators::line(5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let mut t = Transport::new();
        t.send(msg(
            0,
            4,
            Payload::Delete {
                object: ObjectId(0),
                level: 1,
                members_remaining: vec![],
                continue_down: true,
            },
        ));
        t.send(msg(
            4,
            2,
            Payload::Reply {
                object: ObjectId(0),
                proxy: NodeId(2),
            },
        ));
        let first = t.deliver(&m).unwrap();
        assert_eq!(first.dst, NodeId(4));
        assert_eq!(t.ledger.charged, 4.0); // delete is charged
        let _second = t.deliver(&m).unwrap();
        assert_eq!(t.ledger.charged, 4.0); // reply is not
        assert_eq!(t.ledger.of_kind("reply"), 2.0);
        assert_eq!(t.ledger.messages, 2);
        assert!(t.is_idle());
        assert!(t.deliver(&m).is_none());
    }

    #[test]
    fn timed_transport_orders_by_arrival() {
        let g = generators::line(6).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let mut t = TimedTransport::new(0.0);
        // sent simultaneously: the shorter hop arrives first
        t.send_at(
            msg(
                0,
                5,
                Payload::Reply {
                    object: ObjectId(0),
                    proxy: NodeId(5),
                },
            ),
            0.0,
            &m,
        );
        t.send_at(
            msg(
                0,
                1,
                Payload::Reply {
                    object: ObjectId(1),
                    proxy: NodeId(1),
                },
            ),
            0.0,
            &m,
        );
        let first = t.deliver(&m).unwrap();
        assert_eq!(first.payload.object(), ObjectId(1));
        assert!((t.now - 1.0).abs() < 1e-12);
        let second = t.deliver(&m).unwrap();
        assert_eq!(second.payload.object(), ObjectId(0));
        assert!((t.now - 5.0).abs() < 1e-12);
        assert!(t.is_idle());
    }

    #[test]
    fn period_gate_delays_level_entries() {
        let g = generators::line(8).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let climb_into_level_2 = Payload::Climb {
            object: ObjectId(0),
            origin: NodeId(0),
            level: 2,
            index: 0,
            prev_members: vec![],
            added: vec![],
            publish: false,
        };
        assert_eq!(climb_into_level_2.level_entry(), Some(2));

        let mut gated = TimedTransport::new(1.0); // Φ(2) = 4
        gated.send_at(msg(0, 1, climb_into_level_2.clone()), 0.0, &m);
        gated.deliver(&m).unwrap();
        assert!(
            (gated.now - 4.0).abs() < 1e-12,
            "arrival gated to the period end"
        );

        let mut free = TimedTransport::new(0.0);
        free.send_at(msg(0, 1, climb_into_level_2), 0.0, &m);
        free.deliver(&m).unwrap();
        assert!((free.now - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mid_level_hops_are_not_gated() {
        let p = Payload::Climb {
            object: ObjectId(0),
            origin: NodeId(0),
            level: 2,
            index: 1,
            prev_members: vec![],
            added: vec![],
            publish: false,
        };
        assert_eq!(p.level_entry(), None);
        let q = Payload::Query {
            object: ObjectId(0),
            origin: NodeId(0),
            level: 0,
            index: 0,
        };
        assert_eq!(q.level_entry(), None, "level-0 start is not a level entry");
    }

    #[test]
    fn reset_clears_operation_counters() {
        let g = generators::line(3).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let mut t = Transport::new();
        t.send(msg(
            0,
            2,
            Payload::Query {
                object: ObjectId(1),
                origin: NodeId(0),
                level: 0,
                index: 0,
            },
        ));
        t.deliver(&m).unwrap();
        assert!(t.ledger.charged > 0.0);
        t.ledger.reset();
        assert_eq!(t.ledger.charged, 0.0);
        assert_eq!(t.ledger.messages, 0);
        assert_eq!(t.ledger.of_kind("query"), 0.0);
    }
}
