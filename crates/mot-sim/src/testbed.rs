//! One-stop experiment environments.
//!
//! A [`TestBed`] bundles a topology, its distance oracle, and a prebuilt
//! overlay; [`TestBed::make_tracker`] instantiates any of the compared
//! algorithms over it. The traffic-conscious baselines receive the
//! workload's measured [`DetectionRates`]; MOT never sees them
//! (traffic-obliviousness is its defining property).

use crate::concurrent::ClimbStructure;
use crate::error::SimError;
use crate::faults::{FaultConfig, FaultPlan};
use mot_baselines::{build_dat, build_stun, build_zdat, DetectionRates, TreeTracker, ZdatParams};
use mot_core::{MotConfig, MotTracker, TraceSink};
use mot_hierarchy::{build_doubling, build_general, Overlay, OverlayConfig};
use mot_net::{DistanceOracle, Graph, HybridOracle, NodeId, OracleKind};

/// The algorithms compared in the paper's evaluation, plus the ablation
/// variants this reproduction adds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// MOT, plain (Algorithm 1).
    Mot,
    /// MOT with §5 load balancing (hashing + de Bruijn routing costs).
    MotLb,
    /// MOT without special parents (ablation: Fig. 2 pathology).
    MotNoSp,
    /// STUN via Drain-And-Balance (Kung & Vlah).
    Stun,
    /// Deviation-Avoidance Tree (Lin et al.).
    Dat,
    /// Zone-based DAT (Lin et al.).
    Zdat,
    /// Z-DAT wrapped with Liu-et-al.-style shortcuts.
    ZdatShortcuts,
}

impl Algo {
    /// The four algorithms the paper's figures compare.
    pub fn paper_lineup() -> [Algo; 4] {
        [Algo::Mot, Algo::Stun, Algo::Zdat, Algo::ZdatShortcuts]
    }

    /// Display name used in reports (matches the paper's legends).
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Mot => "MOT",
            Algo::MotLb => "MOT+LB",
            Algo::MotNoSp => "MOT-noSP",
            Algo::Stun => "STUN",
            Algo::Dat => "DAT",
            Algo::Zdat => "Z-DAT",
            Algo::ZdatShortcuts => "Z-DAT+shortcuts",
        }
    }
}

/// A topology with its oracle and overlay, ready to instantiate trackers.
///
/// The oracle is a boxed [`DistanceOracle`] chosen via [`OracleKind`]:
/// dense (exact all-pairs matrix) by default up to
/// [`OracleKind::DENSE_NODE_LIMIT`] nodes, the byte-budgeted cached
/// backend (bounded solves on miss) beyond that — so no bed
/// construction ever performs an n² warm-up. With the hybrid backend
/// the bed pins every hierarchy-internal node's row right after overlay
/// construction, so the hot set never churns out of the row cache.
pub struct TestBed {
    /// The sensor-network topology.
    pub graph: Graph,
    /// Distance backend every cost account is billed against.
    pub oracle: Box<dyn DistanceOracle>,
    /// The hierarchical overlay the trackers are built on.
    pub overlay: Overlay,
    /// Optional fault environment; [`TestBed::fault_plan`] expands it.
    pub faults: Option<FaultConfig>,
}

impl TestBed {
    /// Builds a bed over an arbitrary connected graph with the doubling
    /// (MIS) overlay — the constant-doubling model used by the paper's
    /// experiments. Errors (instead of panicking) on topologies the
    /// distance backend rejects, e.g. disconnected graphs.
    pub fn new(graph: Graph, seed: u64) -> Result<Self, SimError> {
        Self::with_config(graph, &OverlayConfig::practical(), seed)
    }

    /// Builds a bed with an explicit overlay configuration.
    pub fn with_config(graph: Graph, cfg: &OverlayConfig, seed: u64) -> Result<Self, SimError> {
        Self::with_oracle(graph, cfg, seed, OracleKind::Auto)
    }

    /// Builds a doubling-overlay bed on an explicit distance backend.
    pub fn with_oracle(
        graph: Graph,
        cfg: &OverlayConfig,
        seed: u64,
        kind: OracleKind,
    ) -> Result<Self, SimError> {
        Self::assemble(graph, cfg, seed, kind, false)
    }

    /// Builds a bed with the §6 general-network (sparse partition)
    /// overlay instead of the doubling one.
    pub fn general(graph: Graph, cfg: &OverlayConfig, seed: u64) -> Result<Self, SimError> {
        Self::assemble(graph, cfg, seed, OracleKind::Auto, true)
    }

    fn assemble(
        graph: Graph,
        cfg: &OverlayConfig,
        seed: u64,
        kind: OracleKind,
        general: bool,
    ) -> Result<Self, SimError> {
        let build_overlay = |g: &Graph, m: &dyn DistanceOracle| {
            if general {
                build_general(g, m, cfg, seed)
            } else {
                build_doubling(g, m, cfg, seed)
            }
        };
        let (oracle, overlay): (Box<dyn DistanceOracle>, Overlay) =
            match kind.resolve(graph.node_count()) {
                OracleKind::Hybrid => {
                    let h = HybridOracle::new(&graph)?;
                    let overlay = build_overlay(&graph, &h);
                    // Pin the hierarchy-internal hot set: every level-1+
                    // member is hit by each publish/move/query climb.
                    let mut hot: Vec<NodeId> = (1..=overlay.height())
                        .flat_map(|l| overlay.level_members(l).iter().copied())
                        .collect();
                    hot.sort_unstable();
                    hot.dedup();
                    h.pin(&hot);
                    (Box::new(h), overlay)
                }
                resolved => {
                    let oracle = resolved.build(&graph)?;
                    let overlay = build_overlay(&graph, &*oracle);
                    (oracle, overlay)
                }
            };
        Ok(TestBed {
            graph,
            oracle,
            overlay,
            faults: None,
        })
    }

    /// Attaches a fault environment to this bed.
    pub fn with_faults(mut self, cfg: FaultConfig) -> Self {
        self.faults = Some(cfg);
        self
    }

    /// Expands the attached fault config (if any) into a replayable plan
    /// over this bed's sensors and a workload of `steps` moves.
    pub fn fault_plan(&self, steps: usize) -> Option<FaultPlan> {
        self.faults
            .as_ref()
            .map(|cfg| cfg.plan(self.graph.node_count(), steps))
    }

    /// `rows × cols` unit grid bed (the paper's topology).
    pub fn grid(rows: usize, cols: usize, seed: u64) -> Result<Self, SimError> {
        Self::new(mot_net::generators::grid(rows, cols)?, seed)
    }

    /// Grid bed on an explicit distance backend.
    pub fn grid_with_oracle(
        rows: usize,
        cols: usize,
        seed: u64,
        kind: OracleKind,
    ) -> Result<Self, SimError> {
        Self::with_oracle(
            mot_net::generators::grid(rows, cols)?,
            &OverlayConfig::practical(),
            seed,
            kind,
        )
    }

    /// An `n`-sensor ring bed — the adversarial topology for any fixed
    /// spanning tree: the tree must drop one ring edge, and a ping-pong
    /// mover across the dropped edge pays the full circumference per
    /// unit move (the paper's lower-bound discussion; DESIGN.md §18).
    pub fn ring(n: usize, seed: u64) -> Result<Self, SimError> {
        Self::new(mot_net::generators::ring(n)?, seed)
    }

    /// An `n`-sensor line bed — the adversarial topology for sink-rooted
    /// baselines: queries near one end detour through the root.
    pub fn line(n: usize, seed: u64) -> Result<Self, SimError> {
        Self::new(mot_net::generators::line(n)?, seed)
    }

    /// The adjacent sensor pair with the deepest cluster boundary
    /// between them: the edge maximizing [`Overlay::meet_level`] (ties
    /// broken toward the smaller ids, so the pick is deterministic).
    /// Pinning a [`crate::MobilityModel::PingPong`] mover here makes
    /// every unit move cross the overlay's most expensive cut — the
    /// worst adversary a unit-speed object can mount against MOT.
    pub fn boundary_pair(&self) -> (NodeId, NodeId) {
        let mut best: Option<(usize, NodeId, NodeId)> = None;
        for u in self.graph.nodes() {
            for e in self.graph.neighbors(u) {
                if u >= e.to {
                    continue;
                }
                let level = self.overlay.meet_level(u, e.to);
                if best.map(|(bl, _, _)| level > bl).unwrap_or(true) {
                    best = Some((level, u, e.to));
                }
            }
        }
        let (_, a, b) = best.expect("non-empty graph has at least one edge");
        (a, b)
    }

    /// A graph center — the sink the tree baselines root at.
    ///
    /// Eccentricities come from one graph-side Dijkstra per node
    /// (quantized through f32 like every oracle read, so the pick is
    /// identical to an oracle scan) instead of n² oracle `dist` calls —
    /// on-demand backends would otherwise warm a full row per node.
    pub fn center(&self) -> NodeId {
        let n = self.graph.node_count();
        let mut ws = mot_net::DijkstraWorkspace::with_capacity(n);
        let mut best: Option<(f64, NodeId)> = None;
        for u in (0..n).map(NodeId::from_index) {
            ws.sssp(&self.graph, u);
            let ecc = (0..n)
                .map(|v| ws.dist(NodeId::from_index(v)) as f32 as f64)
                .fold(0.0, f64::max);
            if best.map(|(be, bu)| (ecc, u) < (be, bu)).unwrap_or(true) {
                best = Some((ecc, u));
            }
        }
        best.expect("non-empty graph").1
    }

    /// Instantiates `algo` over this bed. `rates` is the traffic
    /// knowledge handed to the traffic-conscious baselines (ignored by
    /// the MOT variants). Errors if the bed's topology lacks what the
    /// algorithm needs (Z-DAT requires node positions).
    pub fn make_tracker<'a>(
        &'a self,
        algo: Algo,
        rates: &DetectionRates,
    ) -> Result<Box<dyn ClimbStructure + 'a>, SimError> {
        self.tracker_inner(algo, rates, None)
    }

    /// [`TestBed::make_tracker`] with a structured-trace sink attached:
    /// every billed hop the tracker performs is mirrored to `sink` (see
    /// the observability contract on [`mot_core::Tracker`]).
    pub fn make_tracker_traced<'a>(
        &'a self,
        algo: Algo,
        rates: &DetectionRates,
        sink: &'a dyn TraceSink,
    ) -> Result<Box<dyn ClimbStructure + 'a>, SimError> {
        self.tracker_inner(algo, rates, Some(sink))
    }

    fn tracker_inner<'a>(
        &'a self,
        algo: Algo,
        rates: &DetectionRates,
        sink: Option<&'a dyn TraceSink>,
    ) -> Result<Box<dyn ClimbStructure + 'a>, SimError> {
        let mot = |cfg: MotConfig| -> Box<dyn ClimbStructure + 'a> {
            let mut t = MotTracker::new(&self.overlay, &self.oracle, cfg);
            if let Some(s) = sink {
                t = t.with_sink(s);
            }
            Box::new(t)
        };
        let tree = |t: TreeTracker<'a>| -> Box<dyn ClimbStructure + 'a> {
            match sink {
                Some(s) => Box::new(t.with_sink(s)),
                None => Box::new(t),
            }
        };
        Ok(match algo {
            Algo::Mot => mot(MotConfig::plain()),
            Algo::MotLb => mot(MotConfig::load_balanced()),
            Algo::MotNoSp => mot(MotConfig::no_special_parents()),
            Algo::Stun => {
                // Kung & Vlah's queries are served from the sink: the
                // request travels to the root and descends from there.
                let t = build_stun(&self.graph, rates);
                tree(TreeTracker::new("STUN", t, &self.oracle, false).with_root_queries())
            }
            Algo::Dat => {
                let t = build_dat(&self.graph, rates, self.center());
                tree(TreeTracker::new("DAT", t, &self.oracle, false))
            }
            Algo::Zdat => {
                let t = build_zdat(&self.graph, rates, ZdatParams::default())?;
                tree(TreeTracker::new("Z-DAT", t, &self.oracle, false))
            }
            Algo::ZdatShortcuts => {
                let t = build_zdat(&self.graph, rates, ZdatParams::default())?;
                tree(TreeTracker::new("Z-DAT+shortcuts", t, &self.oracle, true))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::WorkloadSpec;
    use crate::run::{replay_moves, run_publish, run_queries};

    #[test]
    fn all_algorithms_run_one_workload() {
        let bed = TestBed::grid(5, 5, 3).unwrap();
        let w = WorkloadSpec::new(3, 40, 1).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        for algo in [
            Algo::Mot,
            Algo::MotLb,
            Algo::MotNoSp,
            Algo::Stun,
            Algo::Dat,
            Algo::Zdat,
            Algo::ZdatShortcuts,
        ] {
            let mut t = bed.make_tracker(algo, &rates).unwrap();
            run_publish(t.as_mut(), &w).unwrap();
            let stats = replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
            assert!(
                stats.ratio() >= 1.0,
                "{}: ratio {}",
                algo.label(),
                stats.ratio()
            );
            let q = run_queries(t.as_ref(), &bed.oracle, 3, 50, 2).unwrap();
            assert_eq!(q.correct, 50, "{} answered queries wrong", algo.label());
        }
    }

    #[test]
    fn ring_and_line_beds_build_and_track() {
        for bed in [TestBed::ring(16, 4).unwrap(), TestBed::line(16, 4).unwrap()] {
            let w = WorkloadSpec::new(2, 20, 5).generate(&bed.graph);
            let rates = DetectionRates::uniform(&bed.graph);
            let mut t = bed.make_tracker(Algo::Mot, &rates).unwrap();
            run_publish(t.as_mut(), &w).unwrap();
            replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
            let q = run_queries(t.as_ref(), &bed.oracle, 2, 30, 1).unwrap();
            assert_eq!(q.correct, 30);
        }
    }

    #[test]
    fn boundary_pair_is_a_deterministic_deep_cut_edge() {
        let bed = TestBed::grid(8, 8, 3).unwrap();
        let (a, b) = bed.boundary_pair();
        assert!(bed.graph.has_edge(a, b), "boundary pair must be an edge");
        assert_eq!((a, b), bed.boundary_pair(), "pick must be deterministic");
        // No edge meets strictly deeper than the reported pair.
        let level = bed.overlay.meet_level(a, b);
        for u in bed.graph.nodes() {
            for e in bed.graph.neighbors(u) {
                assert!(bed.overlay.meet_level(u, e.to) <= level);
            }
        }
        assert!(level >= 1, "an 8×8 overlay has at least one real cut");
    }

    #[test]
    fn center_of_grid_is_central() {
        let bed = TestBed::grid(5, 5, 1).unwrap();
        assert_eq!(bed.center(), NodeId(12));
    }

    #[test]
    fn disconnected_graph_is_an_error_not_a_panic() {
        // Two 2-node islands: every distance backend must reject it, and
        // the bed has to surface that as `SimError::Net` instead of the
        // old `.expect("connected graph")` panic.
        let mut b = mot_net::GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build_unchecked();
        let err = match TestBed::new(g, 1) {
            Ok(_) => panic!("disconnected graph produced a bed"),
            Err(e) => e,
        };
        assert!(
            matches!(err, SimError::Net(_)),
            "expected a network error, got {err:?}"
        );
    }

    #[test]
    fn paper_lineup_has_the_four_compared_algorithms() {
        let labels: Vec<_> = Algo::paper_lineup().iter().map(|a| a.label()).collect();
        assert_eq!(labels, vec!["MOT", "STUN", "Z-DAT", "Z-DAT+shortcuts"]);
    }

    #[test]
    fn general_overlay_bed_works_end_to_end() {
        let g = mot_net::generators::grid(5, 5).unwrap();
        let bed = TestBed::general(g, &mot_hierarchy::OverlayConfig::practical(), 2).unwrap();
        let w = WorkloadSpec::new(2, 30, 5).generate(&bed.graph);
        let rates = DetectionRates::uniform(&bed.graph);
        let mut t = bed.make_tracker(Algo::Mot, &rates).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        replay_moves(t.as_mut(), &w, &bed.oracle).unwrap();
        let q = run_queries(t.as_ref(), &bed.oracle, 2, 40, 3).unwrap();
        assert_eq!(q.correct, 40);
    }
}
