//! Determinism regression for the fault layer: one `FaultConfig` seed
//! must expand to bit-identical fault schedules, cost ledgers, and
//! repair accounts — across repeated runs and across distance backends.
//! Faulty experiments are only trustworthy if they replay exactly.

use mot_baselines::DetectionRates;
use mot_net::OracleKind;
use mot_sim::{
    replay_moves_faulty, run_publish, run_queries_faulty, unrepaired_objects, Algo, FaultConfig,
    FaultyQueryStats, FaultyRunStats, TestBed,
};
use mot_sim::{Workload, WorkloadSpec};

const OBJECTS: usize = 4;

fn config() -> FaultConfig {
    FaultConfig {
        seed: 77,
        drop_rate: 0.08,
        duplicate_rate: 0.03,
        delay_rate: 0.02,
        crashes: 20,
        ..FaultConfig::default()
    }
}

struct FaultyOutcome {
    schedule: Vec<(usize, mot_net::NodeId)>,
    run: FaultyRunStats,
    queries: FaultyQueryStats,
    repair_cost: f64,
    unrepaired: usize,
}

fn run_faulty(kind: OracleKind, algo: Algo, w: &Workload) -> FaultyOutcome {
    let bed = TestBed::grid_with_oracle(10, 10, 4, kind)
        .unwrap()
        .with_faults(config());
    let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
    let mut plan = bed.fault_plan(w.moves.len()).unwrap();
    let schedule = plan.crash_schedule().to_vec();
    let mut t = bed.make_tracker(algo, &rates).unwrap();
    run_publish(t.as_mut(), w).unwrap();
    let run = replay_moves_faulty(t.as_mut(), w, &bed.oracle, &mut plan).unwrap();
    let queries = run_queries_faulty(t.as_mut(), &bed.oracle, OBJECTS, 100, 6, &mut plan).unwrap();
    FaultyOutcome {
        schedule,
        run,
        repair_cost: t.repair_cost(),
        unrepaired: unrepaired_objects(t.as_ref(), OBJECTS, bed.center()),
        queries,
    }
}

#[test]
fn same_seed_replays_bit_identically_across_runs_and_backends() {
    let w = WorkloadSpec::new(OBJECTS, 80, 12).generate(&TestBed::grid(10, 10, 4).unwrap().graph);
    for algo in [Algo::Mot, Algo::Stun] {
        let first = run_faulty(OracleKind::Dense, algo, &w);
        // identical rerun: schedules, ledgers, and repair accounts match
        let rerun = run_faulty(OracleKind::Dense, algo, &w);
        let label = algo.label();
        assert_eq!(rerun.schedule, first.schedule, "{label}: crash schedule");
        assert_eq!(rerun.run, first.run, "{label}: maintenance account");
        assert_eq!(rerun.queries, first.queries, "{label}: query account");
        assert_eq!(rerun.repair_cost, first.repair_cost, "{label}: repairs");
        // a different distance backend changes nothing either
        let lazy = run_faulty(OracleKind::Lazy, algo, &w);
        assert_eq!(lazy.schedule, first.schedule, "{label}: schedule vs lazy");
        assert_eq!(lazy.run, first.run, "{label}: maintenance vs lazy");
        assert_eq!(lazy.queries, first.queries, "{label}: queries vs lazy");
        assert_eq!(
            lazy.repair_cost, first.repair_cost,
            "{label}: repair vs lazy"
        );
        // and the faults were real: overhead, repairs, full recovery
        assert!(
            first.run.retry_overhead > 0.0,
            "{label}: no drops injected?"
        );
        assert!(first.repair_cost > 0.0, "{label}: no crash damage?");
        assert_eq!(first.queries.batch.correct, 100, "{label}: wrong answers");
        assert_eq!(first.unrepaired, 0, "{label}: unrepaired objects remain");
    }
}
