//! The `service` / `service-smoke` experiments: a chaos soak of the
//! long-lived sharded event loop (DESIGN.md §15).
//!
//! Each spec runs [`mot_sim::run_service`] over a seeded
//! publish/move/query stream under a composed fault plan (drops,
//! duplicates, delays, dead links, shard crashes) and renders the
//! deterministic slice of the [`mot_sim::ServiceReport`] as a metric
//! table. Two health checks fail the experiment (nonzero exit, like
//! every other runner's checks):
//!
//! * any full-path query whose tracker answer disagreed with the shard
//!   ledger, and
//! * — whenever the retry budget absorbed every fault (`lost == 0`) —
//!   a final object→location map that is not bit-identical to the
//!   fault-free oracle replay of the same stream.
//!
//! `run_service` itself already rejects unaccounted ops
//! (`sent != applied + shed + lost`) and ledger/tracker disagreement,
//! so a table coming out of here certifies the zero-silent-loss
//! invariant. Wall-clock throughput is intentionally *not* a table row
//! (tables must be byte-identical across `--jobs`); the binary prints
//! it to stderr and `--metrics` carries it in the report's `service`
//! trailer.

use crate::figures::{BenchError, BenchResult};
use crate::report::FigureTable;
use mot_net::OracleKind;
use mot_sim::{
    run_service, FaultConfig, OpStream, ServiceConfig, ServiceReport, StreamSpec, TestBed,
};

/// One service-soak configuration: the topology plus the full
/// [`ServiceConfig`] (stream, sharding, fault plan, policy).
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Grid topology to run on.
    pub grid: (usize, usize),
    /// Distance backend for the bed.
    pub oracle: OracleKind,
    /// The service loop configuration.
    pub cfg: ServiceConfig,
}

/// The composed chaos plan every profile runs: drops, duplicates,
/// delays, dead links, and `crashes` shard crashes. `max_attempts`
/// scales with the op count so the retry budget keeps the expected
/// exhaustion count at zero and the bit-identical end-state check
/// stays in force.
fn composed_plan(seed: u64, crashes: usize, max_attempts: u32) -> FaultConfig {
    FaultConfig {
        seed,
        drop_rate: 0.15,
        duplicate_rate: 0.05,
        delay_rate: 0.05,
        link_failure_rate: 0.02,
        crashes,
        max_attempts,
    }
}

impl ServiceSpec {
    fn base(
        grid: (usize, usize),
        objects: usize,
        ops: u64,
        shards: usize,
        batch: usize,
        faults: FaultConfig,
    ) -> Self {
        let mut cfg = ServiceConfig::new(StreamSpec::new(objects, ops, 0xC0FFEE));
        cfg.shards = shards;
        cfg.jobs = 0;
        cfg.batch = batch;
        cfg.faults = faults;
        ServiceSpec {
            grid,
            oracle: OracleKind::Auto,
            cfg,
        }
    }

    /// Seconds-scale soak: 2·10⁴ ops over 500 objects on a 16×16 grid.
    pub fn quick() -> Self {
        Self::base((16, 16), 500, 20_000, 8, 256, composed_plan(7, 4, 8))
    }

    /// The default soak: 2·10⁵ ops over 5000 objects on a 24×24 grid.
    pub fn standard() -> Self {
        Self::base((24, 24), 5_000, 200_000, 16, 512, composed_plan(7, 8, 10))
    }

    /// The full-profile soak the acceptance criteria name: 10⁶ ops over
    /// 2·10⁵ objects on a 32×32 grid.
    pub fn paper() -> Self {
        Self::base(
            (32, 32),
            200_000,
            1_000_000,
            32,
            1024,
            composed_plan(7, 16, 12),
        )
    }

    /// The CI `service-smoke` job: a short composed-fault soak pinned to
    /// `--jobs 2`, small enough for seconds-scale turnaround.
    pub fn smoke() -> Self {
        let mut s = Self::base((12, 12), 100, 10_000, 4, 128, composed_plan(7, 3, 8));
        s.cfg.jobs = 2;
        s
    }

    /// Maps the binary's `--profile` names onto soak scales.
    pub fn for_profile(name: &str) -> Result<Self, BenchError> {
        Ok(match name {
            "quick" => Self::quick(),
            "standard" => Self::standard(),
            "paper" => Self::paper(),
            other => return Err(format!("unknown profile '{other}' (quick|standard|paper)").into()),
        })
    }

    /// Overrides the distance backend.
    pub fn with_oracle(mut self, kind: OracleKind) -> Self {
        self.oracle = kind;
        self
    }

    /// Overrides the worker count (`0` = auto). Has no effect on any
    /// table byte — the determinism contract of DESIGN.md §12 extends
    /// to service mode.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.cfg.jobs = jobs;
        self
    }
}

/// Runs the soak and returns both renderings: the deterministic metric
/// table and the full report (whose `wall` trailer has the throughput).
pub fn service_run(spec: &ServiceSpec) -> Result<(FigureTable, ServiceReport), BenchError> {
    let (r, c) = spec.grid;
    let bed = TestBed::grid_with_oracle(r, c, spec.cfg.stream.seed, spec.oracle)?;
    let out = run_service(&bed, &spec.cfg)?;
    let rep = out.report;

    if rep.queries_wrong > 0 {
        return Err(format!(
            "{} queries answered against the tracker disagreed with the shard ledger",
            rep.queries_wrong
        )
        .into());
    }
    if rep.lost == 0 {
        let mut oracle = OpStream::new(&bed.graph, spec.cfg.stream);
        while oracle.next_op().is_some() {}
        if out.final_positions != oracle.positions() {
            return Err("no op was lost, yet the final object→location map \
                 differs from the fault-free oracle replay"
                .into());
        }
    }

    let f = &spec.cfg.faults;
    let table = FigureTable {
        title: format!(
            "Service soak: {r}x{c} grid, {} objects, {} ops, \
             drop {} dup {} delay {} link {} crashes {}",
            spec.cfg.stream.objects,
            spec.cfg.stream.ops,
            f.drop_rate,
            f.duplicate_rate,
            f.delay_rate,
            f.link_failure_rate,
            f.crashes
        ),
        x_label: "metric".into(),
        columns: vec!["value".into()],
        rows: vec![
            ("sent".into(), vec![rep.sent as f64]),
            ("applied".into(), vec![rep.applied as f64]),
            ("shed".into(), vec![rep.shed as f64]),
            ("lost".into(), vec![rep.lost as f64]),
            ("superseded".into(), vec![rep.superseded as f64]),
            ("fenced_dups".into(), vec![rep.fenced as f64]),
            ("degraded_queries".into(), vec![rep.degraded as f64]),
            ("queries_correct".into(), vec![rep.queries_correct as f64]),
            ("dropped_attempts".into(), vec![rep.dropped_attempts as f64]),
            ("retries".into(), vec![rep.retries as f64]),
            ("dup_deliveries".into(), vec![rep.dup_deliveries as f64]),
            ("delayed".into(), vec![rep.delayed as f64]),
            ("crash_events".into(), vec![rep.crash_events as f64]),
            ("replayed_ops".into(), vec![rep.replayed_ops as f64]),
            ("redelivered".into(), vec![rep.redelivered as f64]),
            ("recovery_cost".into(), vec![rep.recovery_cost]),
            (
                "backlog_p50_depth".into(),
                vec![rep.backlog_depth.quantile(0.5)],
            ),
            (
                "backlog_p99_depth".into(),
                vec![rep.backlog_depth.quantile(0.99)],
            ),
            ("backlog_max_depth".into(), vec![rep.max_depth as f64]),
            ("backlog_max_age".into(), vec![rep.max_age as f64]),
            (
                "publish_p50_cost".into(),
                vec![rep.publish_cost.quantile(0.5)],
            ),
            ("move_p50_cost".into(), vec![rep.move_cost.quantile(0.5)]),
            ("move_p99_cost".into(), vec![rep.move_cost.quantile(0.99)]),
            ("query_p50_cost".into(), vec![rep.query_cost.quantile(0.5)]),
            ("query_p99_cost".into(), vec![rep.query_cost.quantile(0.99)]),
            ("ticks".into(), vec![rep.ticks as f64]),
        ],
    };
    Ok((table, rep))
}

/// The table alone (testing convenience; the binary uses
/// [`service_run`] to also print throughput and fill `--metrics`).
pub fn service_table(spec: &ServiceSpec) -> BenchResult {
    service_run(spec).map(|(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServiceSpec {
        let mut s = ServiceSpec::smoke();
        s.cfg.stream.ops = 2_000;
        s.cfg.stream.objects = 50;
        s
    }

    #[test]
    fn smoke_spec_soaks_clean_and_reports_every_account() {
        let (table, rep) = service_run(&tiny()).unwrap();
        assert!(rep.accounted());
        assert_eq!(table.column("value").unwrap().len(), table.rows.len());
        let row = |name: &str| {
            table
                .rows
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v[0])
                .unwrap()
        };
        assert_eq!(row("sent"), 2_000.0);
        assert_eq!(row("sent"), row("applied") + row("shed") + row("lost"));
        assert!(row("crash_events") > 0.0);
        assert!(row("queries_correct") > 0.0);
    }

    #[test]
    fn service_table_is_byte_identical_across_jobs() {
        let a = service_table(&tiny().with_jobs(1)).unwrap();
        let b = service_table(&tiny().with_jobs(4)).unwrap();
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn profile_names_map_and_unknown_is_an_error() {
        assert_eq!(ServiceSpec::for_profile("quick").unwrap().grid, (16, 16));
        assert_eq!(
            ServiceSpec::for_profile("paper").unwrap().cfg.stream.ops,
            1_000_000
        );
        assert!(ServiceSpec::for_profile("nope").is_err());
    }
}
