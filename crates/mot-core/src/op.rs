//! Operation identities and the exactly-once ledger for service-mode
//! delivery (DESIGN.md §15).
//!
//! The message transport already deduplicates *messages* by sequence
//! number (`mot-proto`'s `LossyTransport`); service mode needs the same
//! discipline one level up, for whole *operations* (publish / move /
//! query) delivered at-least-once to sharded trackers. This module is
//! that mechanism, generalized so both layers share it:
//!
//! * every operation carries an [`OpId`] and an attempt number,
//! * an [`OpLedger`] admits each id exactly once — a redundant or stale
//!   retry is *fenced* (counted, refused) instead of re-applied, so a
//!   late duplicate can never clobber newer state,
//! * an operation whose delivery budget is exhausted is *recorded lost*
//!   in the ledger rather than silently dropped, preserving the
//!   zero-silent-loss invariant
//!   `sent == applied + recorded-lost + shed`.

use std::collections::HashMap;

/// Identity of one operation (or message) delivered at-least-once.
///
/// Ids are dense sequence numbers assigned by the sender; the ledger
/// only requires them to be unique per ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// Exactly-once admission ledger with attempt fencing and recorded-loss
/// accounting.
///
/// The ledger is the durable part of a shard: it survives a worker
/// crash, so recovery can tell which operations already took effect
/// (their redelivery is fenced) and which were never admitted (their
/// redelivery applies normally).
///
/// ```
/// use mot_core::{OpId, OpLedger};
///
/// let mut ledger = OpLedger::new();
/// assert!(ledger.admit(OpId(7), 0)); // first arrival: apply effects
/// assert!(!ledger.admit(OpId(7), 2)); // retry of an applied op: fenced
/// assert_eq!(ledger.fenced, 1);
/// assert_eq!(ledger.applied_attempt(OpId(7)), Some(0));
///
/// ledger.record_lost(OpId(8)); // budget exhausted: surfaced, not silent
/// assert_eq!(ledger.lost(), &[8]);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpLedger {
    /// id → attempt number that first applied.
    applied: HashMap<u64, u32>,
    /// Ids whose delivery budget was exhausted, in record order.
    lost: Vec<u64>,
    /// Redundant arrivals refused after the first apply (duplicates and
    /// stale retries).
    pub fenced: u64,
}

impl OpLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits one arrival of `op` at `attempt`. Returns `true` exactly
    /// once per id — the arrival whose effects should be applied; every
    /// later arrival (duplicate delivery or stale retry) is fenced.
    pub fn admit(&mut self, op: OpId, attempt: u32) -> bool {
        match self.applied.entry(op.0) {
            std::collections::hash_map::Entry::Occupied(_) => {
                self.fenced += 1;
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(attempt);
                true
            }
        }
    }

    /// Whether `op` was already admitted.
    pub fn is_applied(&self, op: OpId) -> bool {
        self.applied.contains_key(&op.0)
    }

    /// The attempt number that first applied `op`, if any.
    pub fn applied_attempt(&self, op: OpId) -> Option<u32> {
        self.applied.get(&op.0).copied()
    }

    /// Number of distinct operations admitted.
    pub fn applied_count(&self) -> usize {
        self.applied.len()
    }

    /// Records `op` as lost: its delivery budget is exhausted and the
    /// sender gave up. Never silent — the id stays visible here.
    pub fn record_lost(&mut self, op: OpId) {
        self.lost.push(op.0);
    }

    /// Ids recorded lost, in record order.
    pub fn lost(&self) -> &[u64] {
        &self.lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_arrival_applies_then_every_retry_is_fenced() {
        let mut l = OpLedger::new();
        assert!(l.admit(OpId(0), 0));
        assert!(!l.admit(OpId(0), 0), "duplicate delivery");
        assert!(!l.admit(OpId(0), 3), "stale retry");
        assert_eq!(l.fenced, 2);
        assert_eq!(l.applied_count(), 1);
    }

    #[test]
    fn a_late_first_arrival_still_applies_with_its_attempt_recorded() {
        // The attempt number that lands first wins — even if it is a
        // retry — and the original, arriving later, is fenced.
        let mut l = OpLedger::new();
        assert!(l.admit(OpId(9), 4), "retry arrives first");
        assert!(!l.admit(OpId(9), 0), "the delayed original is stale");
        assert_eq!(l.applied_attempt(OpId(9)), Some(4));
    }

    #[test]
    fn lost_ops_are_recorded_not_silent() {
        let mut l = OpLedger::new();
        l.record_lost(OpId(3));
        l.record_lost(OpId(11));
        assert_eq!(l.lost(), &[3, 11]);
        assert!(!l.is_applied(OpId(3)));
    }
}
