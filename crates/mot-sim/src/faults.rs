//! Seeded fault plans and the faulty execution harness.
//!
//! A [`FaultConfig`] is a handful of rates plus an RNG seed; expanding it
//! against a topology yields a [`FaultPlan`] — a deterministic, replayable
//! schedule of message drops, duplications, delays, link failures, and
//! sensor crashes. The same config always expands to the same plan, so
//! every faulty experiment can be re-run bit-identically.
//!
//! The plan plays two roles:
//!
//! * it implements [`mot_proto::FaultModel`], so it can drive the
//!   message-level ack/retry pipe (`LossyTransport`) directly, and
//! * it provides the *hop-statistical* loss model used when replaying
//!   workloads through the direct trackers ([`FaultPlan::transmission_overhead`]):
//!   an operation of cost `c` is treated as `⌈c⌉` unit transmissions,
//!   each lost with `drop_rate` and retried within the bounded budget,
//!   the wasted distance accumulating as retry overhead. The exact
//!   per-message protocol (sequence numbers, `DeliveryFailed`) lives in
//!   `mot-proto` and is validated by its unit tests; the statistical
//!   model reproduces its *cost* behavior at workload scale.
//!
//! Crashes here are "reboot with amnesia": the victim loses all its
//! directory state (and hands any proxied objects to a live neighbor)
//! but is immediately reachable again — the regime where the trackers'
//! lazy self-repair is exercised on every subsequent touch.
//!
//! With [`FaultConfig::default()`] (all rates zero, no crashes) the plan
//! never consults its RNG and every decision is "no fault": runs are
//! bit-identical to ones without the fault layer.

use crate::error::SimError;
use crate::metrics::CostStats;
use crate::mobility::Workload;
use crate::run::QueryBatchStats;
use mot_core::{CoreError, ObjectId, Tracker};
use mot_net::{DistanceOracle, NodeId};
use mot_proto::FaultModel;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

/// Fault rates plus the seed they are expanded with. All rates are
/// probabilities in `[0, 1]`; the default is fault-free.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for the plan's RNG streams.
    pub seed: u64,
    /// Probability each transmission attempt is lost.
    pub drop_rate: f64,
    /// Probability a successful delivery spawns a redundant duplicate.
    pub duplicate_rate: f64,
    /// Probability a delivery is deferred behind the rest of the queue.
    pub delay_rate: f64,
    /// Probability a link is dead, decided once on its first use.
    pub link_failure_rate: f64,
    /// Number of distinct sensors that crash during the replay.
    pub crashes: usize,
    /// Transmission attempts per message before delivery fails.
    pub max_attempts: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            link_failure_rate: 0.0,
            crashes: 0,
            max_attempts: 8,
        }
    }
}

impl FaultConfig {
    /// A config that only drops messages.
    pub fn dropping(drop_rate: f64, seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_rate,
            ..Self::default()
        }
    }

    /// True when every rate is zero and no crashes are scheduled — the
    /// plan will never consult an RNG.
    pub fn is_clean(&self) -> bool {
        self.drop_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.delay_rate <= 0.0
            && self.link_failure_rate <= 0.0
            && self.crashes == 0
    }

    /// Expands this config into a replayable schedule over `node_count`
    /// sensors and a workload of `steps` moves.
    pub fn plan(&self, node_count: usize, steps: usize) -> FaultPlan {
        FaultPlan::new(self.clone(), node_count, steps)
    }
}

/// A deterministic, replayable fault schedule: the expansion of a
/// [`FaultConfig`] against one topology and workload length.
///
/// Message-level decisions (drop/duplicate/delay, made in delivery
/// order) come from one seeded stream; the crash schedule comes from an
/// independent stream, so changing a message rate never shifts *which*
/// sensors crash or *when*.
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Message-event stream, consumed in delivery order.
    rng: ChaCha8Rng,
    /// Crash events as `(move step, victim)`, sorted by step then id.
    crash_schedule: Vec<(usize, NodeId)>,
    /// Links already decided on first use; the failed subset.
    checked_links: HashSet<(NodeId, NodeId)>,
    failed_links: HashSet<(NodeId, NodeId)>,
    /// Sensors currently crashed (for persistent-crash protocols; the
    /// reboot-with-amnesia replay never populates this).
    down: HashSet<NodeId>,
}

impl FaultPlan {
    /// See [`FaultConfig::plan`].
    pub fn new(cfg: FaultConfig, node_count: usize, steps: usize) -> Self {
        debug_assert!(
            [
                cfg.drop_rate,
                cfg.duplicate_rate,
                cfg.delay_rate,
                cfg.link_failure_rate
            ]
            .iter()
            .all(|r| (0.0..=1.0).contains(r)),
            "fault rates are probabilities"
        );
        // Independent stream for the crash schedule: message-rate changes
        // must not move crash events.
        let mut srng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
        let count = cfg.crashes.min(node_count);
        let mut chosen = HashSet::new();
        let mut crash_schedule = Vec::with_capacity(count);
        while crash_schedule.len() < count {
            let v = NodeId::from_index(srng.gen_range(0..node_count));
            if chosen.insert(v) {
                let step = if steps == 0 {
                    0
                } else {
                    srng.gen_range(0..steps)
                };
                crash_schedule.push((step, v));
            }
        }
        crash_schedule.sort_unstable_by_key(|&(s, v)| (s, v));
        FaultPlan {
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cfg,
            crash_schedule,
            checked_links: HashSet::new(),
            failed_links: HashSet::new(),
            down: HashSet::new(),
        }
    }

    /// The config this plan was expanded from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The crash events as `(move step, victim)`, sorted by step.
    pub fn crash_schedule(&self) -> &[(usize, NodeId)] {
        &self.crash_schedule
    }

    /// Victims scheduled to crash right before move `step`.
    pub fn crashes_at(&self, step: usize) -> impl Iterator<Item = NodeId> + '_ {
        self.crash_schedule
            .iter()
            .filter(move |&&(s, _)| s == step)
            .map(|&(_, v)| v)
    }

    /// Marks `u` crashed for [`FaultModel::node_down`] consultations.
    pub fn mark_down(&mut self, u: NodeId) {
        self.down.insert(u);
    }

    /// Marks `u` recovered.
    pub fn mark_up(&mut self, u: NodeId) {
        self.down.remove(&u);
    }

    /// Lazily decides (once, on first use) whether the `src↔dst` link is
    /// dead. A dead link loses every transmission over it.
    fn link_failed(&mut self, src: NodeId, dst: NodeId) -> bool {
        if self.cfg.link_failure_rate <= 0.0 {
            return false;
        }
        let key = if src <= dst { (src, dst) } else { (dst, src) };
        if self.checked_links.insert(key) && self.rng.gen_bool(self.cfg.link_failure_rate) {
            self.failed_links.insert(key);
        }
        self.failed_links.contains(&key)
    }

    /// Hop-statistical fault overhead for one direct-tracker operation of
    /// cost `op_cost`: the operation is `⌈op_cost⌉` unit transmissions,
    /// each dropped with `drop_rate` and retransmitted within the
    /// `max_attempts` budget (the final attempt is taken as delivered, so
    /// the statistical model degrades cost without stalling the replay;
    /// exhaustion semantics are exercised at message level in
    /// `mot-proto`). Duplicated deliveries add one redundant arrival.
    /// Returns the wasted distance.
    pub fn transmission_overhead(&mut self, op_cost: f64) -> f64 {
        let drops = self.cfg.drop_rate > 0.0;
        let dups = self.cfg.duplicate_rate > 0.0;
        if (!drops && !dups) || op_cost <= 0.0 {
            return 0.0;
        }
        let hops = op_cost.ceil() as u64;
        let mut overhead = 0.0;
        for _ in 0..hops {
            if drops {
                let mut attempt = 1;
                while attempt < self.cfg.max_attempts && self.rng.gen_bool(self.cfg.drop_rate) {
                    overhead += 1.0;
                    attempt += 1;
                }
            }
            if dups && self.rng.gen_bool(self.cfg.duplicate_rate) {
                overhead += 1.0;
            }
        }
        overhead
    }
}

impl FaultModel for FaultPlan {
    fn drop_message(&mut self, src: NodeId, dst: NodeId) -> bool {
        if self.link_failed(src, dst) {
            return true;
        }
        self.cfg.drop_rate > 0.0 && self.rng.gen_bool(self.cfg.drop_rate)
    }

    fn duplicate_message(&mut self, _src: NodeId, _dst: NodeId) -> bool {
        self.cfg.duplicate_rate > 0.0 && self.rng.gen_bool(self.cfg.duplicate_rate)
    }

    fn delay_message(&mut self, _src: NodeId, _dst: NodeId) -> bool {
        self.cfg.delay_rate > 0.0 && self.rng.gen_bool(self.cfg.delay_rate)
    }

    fn node_down(&self, u: NodeId) -> bool {
        self.down.contains(&u)
    }
}

/// Outcome of a faulty maintenance replay.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultyRunStats {
    /// Algorithm-vs-optimal cost of the effective (charged) traffic.
    pub maintenance: CostStats,
    /// Wasted distance: lost transmissions, retransmissions, duplicates.
    pub retry_overhead: f64,
    /// Distance the tracker spent repairing crash damage (handoffs plus
    /// lazy re-publishes), as reported by [`Tracker::repair_cost`].
    pub repair_cost: f64,
    /// Crash events injected during the replay.
    pub crashes_injected: usize,
}

/// Replays the maintenance trace under a fault plan.
///
/// Before each move, the sensors scheduled to crash at that step reboot
/// with amnesia ([`Tracker::crash_node`] then [`Tracker::recover_node`]):
/// their directory entries are gone and any proxied object has been
/// handed to a live neighbor. Moves then self-repair whatever damage
/// they touch. Unlike [`crate::replay_moves`], provenance is *not*
/// checked against the trace — crash handoffs legitimately relocate
/// objects, so each move's optimal cost is scored from the structure's
/// actual previous proxy.
pub fn replay_moves_faulty(
    tracker: &mut dyn Tracker,
    workload: &Workload,
    oracle: &dyn DistanceOracle,
    plan: &mut FaultPlan,
) -> std::result::Result<FaultyRunStats, SimError> {
    let mut out = FaultyRunStats::default();
    for (step, m) in workload.moves.iter().enumerate() {
        let victims: Vec<NodeId> = plan.crashes_at(step).collect();
        for v in victims {
            tracker.crash_node(v);
            tracker.recover_node(v);
            out.crashes_injected += 1;
        }
        let outcome = tracker.move_object(m.object, m.to)?;
        out.retry_overhead += plan.transmission_overhead(outcome.cost);
        out.maintenance
            .record(outcome.cost, oracle.dist(outcome.from, m.to));
    }
    out.repair_cost = tracker.repair_cost();
    Ok(out)
}

/// Outcome of a faulty query batch.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultyQueryStats {
    /// The batch scored exactly as [`crate::run_queries`] scores it.
    pub batch: QueryBatchStats,
    /// Queries that first surfaced crash damage and triggered a repair.
    pub repaired: usize,
    /// Wasted transmission distance across the batch.
    pub retry_overhead: f64,
}

/// Issues `count` queries from random nodes (same draw sequence as
/// [`crate::run_queries`] for a given `seed`) with crash-damage recovery:
/// a query that surfaces [`CoreError::NodeDown`] triggers
/// [`Tracker::repair_object`] for its object and is retried once. The
/// query itself is scored at its post-repair cost; the repair distance
/// accrues in the tracker's repair account.
pub fn run_queries_faulty(
    tracker: &mut dyn Tracker,
    oracle: &dyn DistanceOracle,
    object_count: usize,
    count: usize,
    seed: u64,
    plan: &mut FaultPlan,
) -> std::result::Result<FaultyQueryStats, SimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = oracle.node_count();
    let mut out = FaultyQueryStats::default();
    for _ in 0..count {
        let from = NodeId::from_index(rng.gen_range(0..n));
        let o = ObjectId(rng.gen_range(0..object_count as u32));
        let r = match tracker.query(from, o) {
            Ok(r) => r,
            Err(CoreError::NodeDown(_)) => {
                tracker.repair_object(o)?;
                out.repaired += 1;
                tracker.query(from, o)?
            }
            Err(e) => return Err(e.into()),
        };
        let truth = tracker
            .proxy_of(o)
            .expect("workload published every object");
        if r.proxy == truth {
            out.batch.correct += 1;
        }
        out.retry_overhead += plan.transmission_overhead(r.cost);
        let optimal = oracle.dist(from, truth);
        if optimal <= 0.0 {
            out.batch.zero_distance += 1;
        } else {
            out.batch.cost.record(r.cost, optimal);
        }
    }
    Ok(out)
}

/// Repairs every object's pointer path. Returns `(repaired, distance)`:
/// how many objects actually needed work and the distance it took.
pub fn repair_all(
    tracker: &mut dyn Tracker,
    object_count: usize,
) -> mot_core::Result<(usize, f64)> {
    let mut repaired = 0;
    let mut distance = 0.0;
    for oi in 0..object_count {
        let cost = tracker.repair_object(ObjectId(oi as u32))?;
        if cost > 0.0 {
            repaired += 1;
            distance += cost;
        }
    }
    Ok((repaired, distance))
}

/// Counts objects that are *not* queryable from `probe` with the correct
/// answer — after a successful repair pass this must be zero.
pub fn unrepaired_objects(tracker: &dyn Tracker, object_count: usize, probe: NodeId) -> usize {
    (0..object_count)
        .filter(|&oi| {
            let o = ObjectId(oi as u32);
            match (tracker.query(probe, o), tracker.proxy_of(o)) {
                (Ok(r), Some(truth)) => r.proxy != truth,
                _ => true,
            }
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::WorkloadSpec;
    use crate::run::{replay_moves, run_publish};
    use crate::testbed::{Algo, TestBed};
    use mot_baselines::DetectionRates;

    #[test]
    fn clean_config_never_consults_rng_and_injects_nothing() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_clean());
        let mut plan = cfg.plan(100, 500);
        assert!(plan.crash_schedule().is_empty());
        for _ in 0..50 {
            assert!(!plan.drop_message(NodeId(1), NodeId(2)));
            assert!(!plan.duplicate_message(NodeId(1), NodeId(2)));
            assert!(!plan.delay_message(NodeId(1), NodeId(2)));
        }
        assert_eq!(plan.transmission_overhead(37.0), 0.0);
        // The RNG stream is untouched: a fresh plan from the same config
        // makes the same (first) decision once a rate is turned on.
        let mut noisy = FaultConfig {
            drop_rate: 0.5,
            ..FaultConfig::default()
        }
        .plan(100, 500);
        let first = noisy.drop_message(NodeId(1), NodeId(2));
        let mut replayed = FaultConfig {
            drop_rate: 0.5,
            ..FaultConfig::default()
        }
        .plan(100, 500);
        assert_eq!(first, replayed.drop_message(NodeId(1), NodeId(2)));
    }

    #[test]
    fn crash_schedule_is_deterministic_distinct_and_rate_independent() {
        let cfg = FaultConfig {
            crashes: 8,
            seed: 11,
            ..FaultConfig::default()
        };
        let a = cfg.plan(64, 200);
        let b = cfg.plan(64, 200);
        assert_eq!(a.crash_schedule(), b.crash_schedule());
        assert_eq!(a.crash_schedule().len(), 8);
        let victims: HashSet<NodeId> = a.crash_schedule().iter().map(|&(_, v)| v).collect();
        assert_eq!(victims.len(), 8, "victims are distinct sensors");
        assert!(a.crash_schedule().iter().all(|&(s, _)| s < 200));
        // message rates must not move crash events (independent streams)
        let noisy = FaultConfig {
            drop_rate: 0.3,
            duplicate_rate: 0.2,
            ..cfg.clone()
        }
        .plan(64, 200);
        assert_eq!(noisy.crash_schedule(), a.crash_schedule());
        // crash count capped by the node universe
        let capped = FaultConfig {
            crashes: 1000,
            ..cfg
        }
        .plan(16, 10);
        assert_eq!(capped.crash_schedule().len(), 16);
    }

    #[test]
    fn dead_links_lose_every_transmission() {
        let cfg = FaultConfig {
            link_failure_rate: 1.0,
            seed: 3,
            ..FaultConfig::default()
        };
        let mut plan = cfg.plan(10, 0);
        assert!(plan.drop_message(NodeId(0), NodeId(1)));
        assert!(
            plan.drop_message(NodeId(1), NodeId(0)),
            "link failure is symmetric and persistent"
        );
    }

    #[test]
    fn faulty_replay_repairs_everything_for_mot_and_stun() {
        let bed = TestBed::grid(8, 8, 5).unwrap();
        let w = WorkloadSpec::new(4, 60, 9).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let cfg = FaultConfig {
            drop_rate: 0.05,
            duplicate_rate: 0.02,
            crashes: 6,
            seed: 21,
            ..FaultConfig::default()
        };
        for algo in [Algo::Mot, Algo::Stun] {
            let mut plan = cfg.plan(bed.graph.node_count(), w.moves.len());
            let mut t = bed.make_tracker(algo, &rates).unwrap();
            run_publish(t.as_mut(), &w).unwrap();
            let run = replay_moves_faulty(t.as_mut(), &w, &bed.oracle, &mut plan).unwrap();
            assert_eq!(run.crashes_injected, 6, "{}", algo.label());
            assert!(run.retry_overhead > 0.0, "{}", algo.label());
            assert!(run.maintenance.ratio() >= 1.0, "{}", algo.label());
            let q = run_queries_faulty(t.as_mut(), &bed.oracle, 4, 120, 2, &mut plan).unwrap();
            assert_eq!(q.batch.correct, 120, "{}: wrong answers", algo.label());
            let (_, dist) = repair_all(t.as_mut(), 4).unwrap();
            assert!(dist >= 0.0);
            assert_eq!(
                unrepaired_objects(t.as_ref(), 4, bed.center()),
                0,
                "{}: unrepaired objects remain",
                algo.label()
            );
            assert!(
                t.repair_cost() > 0.0,
                "{}: crashes must cost repair work",
                algo.label()
            );
        }
    }

    #[test]
    fn zero_fault_replay_matches_the_reliable_path_exactly() {
        let bed = TestBed::grid(6, 6, 2).unwrap();
        let w = WorkloadSpec::new(3, 50, 4).generate(&bed.graph);
        let rates = DetectionRates::from_moves(&bed.graph, &w.move_pairs());
        let cfg = FaultConfig::default();
        for algo in [Algo::Mot, Algo::Stun] {
            let mut clean = bed.make_tracker(algo, &rates).unwrap();
            run_publish(clean.as_mut(), &w).unwrap();
            let reliable = replay_moves(clean.as_mut(), &w, &bed.oracle).unwrap();

            let mut plan = cfg.plan(bed.graph.node_count(), w.moves.len());
            let mut faulty = bed.make_tracker(algo, &rates).unwrap();
            run_publish(faulty.as_mut(), &w).unwrap();
            let run = replay_moves_faulty(faulty.as_mut(), &w, &bed.oracle, &mut plan).unwrap();
            assert_eq!(run.maintenance, reliable, "{}", algo.label());
            assert_eq!(run.retry_overhead, 0.0);
            assert_eq!(run.repair_cost, 0.0);
            assert_eq!(run.crashes_injected, 0);
        }
    }
}
