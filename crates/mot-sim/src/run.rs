//! One-by-one execution: publish, maintenance replay, query batches.
//!
//! Each operation completes before the next starts (the paper's primary
//! case, matching scenarios where event inter-arrival times dwarf message
//! propagation times).

use crate::metrics::CostStats;
use crate::mobility::Workload;
use mot_core::{ObjectId, Result, Tracker};
use mot_net::{DistanceMatrix, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Publishes every object of `workload` at its initial proxy. Returns the
/// total publish cost (a one-time cost outside the cost ratios).
pub fn run_publish(tracker: &mut dyn Tracker, workload: &Workload) -> Result<f64> {
    let mut total = 0.0;
    for (oi, &proxy) in workload.initial.iter().enumerate() {
        total += tracker.publish(ObjectId(oi as u32), proxy)?;
    }
    Ok(total)
}

/// Replays the maintenance operations one by one, verifying each move's
/// provenance and accumulating algorithm-vs-optimal cost.
pub fn replay_moves(
    tracker: &mut dyn Tracker,
    workload: &Workload,
    oracle: &DistanceMatrix,
) -> Result<CostStats> {
    let mut stats = CostStats::default();
    for m in &workload.moves {
        let outcome = tracker.move_object(m.object, m.to)?;
        debug_assert_eq!(
            outcome.from, m.from,
            "structure proxy record diverged from the trace"
        );
        stats.record(outcome.cost, oracle.dist(m.from, m.to));
    }
    Ok(stats)
}

/// Statistics of one query batch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryBatchStats {
    pub cost: CostStats,
    /// Queries whose requester happened to be the proxy (optimal cost 0;
    /// excluded from the ratio, reported for completeness).
    pub zero_distance: usize,
    /// Queries that returned the true proxy (must equal the batch size).
    pub correct: usize,
}

/// Issues `count` queries from random nodes for random objects against
/// the tracker's current state and scores them against the optimal cost
/// `dist(requester, proxy)`.
pub fn run_queries(
    tracker: &dyn Tracker,
    oracle: &DistanceMatrix,
    object_count: usize,
    count: usize,
    seed: u64,
) -> Result<QueryBatchStats> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = oracle.node_count();
    let mut out = QueryBatchStats::default();
    for _ in 0..count {
        let from = NodeId::from_index(rng.gen_range(0..n));
        let o = ObjectId(rng.gen_range(0..object_count as u32));
        let truth = tracker
            .proxy_of(o)
            .expect("workload published every object");
        let r = tracker.query(from, o)?;
        if r.proxy == truth {
            out.correct += 1;
        }
        let optimal = oracle.dist(from, truth);
        if optimal <= 0.0 {
            out.zero_distance += 1;
        } else {
            out.cost.record(r.cost, optimal);
        }
    }
    Ok(out)
}

/// Issues `count` *local* queries: each requester is drawn from within
/// distance `radius` of the queried object's proxy. Distance-sensitive
/// tracking is the paper's core promise — a query about a nearby object
/// must cost proportional to the distance, not the network size — and
/// local queries are where sink-routed baselines pay their detour.
pub fn run_local_queries(
    tracker: &dyn Tracker,
    oracle: &DistanceMatrix,
    object_count: usize,
    radius: f64,
    count: usize,
    seed: u64,
) -> Result<QueryBatchStats> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = QueryBatchStats::default();
    for _ in 0..count {
        let o = ObjectId(rng.gen_range(0..object_count as u32));
        let truth = tracker
            .proxy_of(o)
            .expect("workload published every object");
        let near = oracle.ball(truth, radius);
        let from = near[rng.gen_range(0..near.len())];
        let r = tracker.query(from, o)?;
        if r.proxy == truth {
            out.correct += 1;
        }
        let optimal = oracle.dist(from, truth);
        if optimal <= 0.0 {
            out.zero_distance += 1;
        } else {
            out.cost.record(r.cost, optimal);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::WorkloadSpec;
    use mot_core::{MotConfig, MotTracker};
    use mot_hierarchy::{build_doubling, OverlayConfig};
    use mot_net::generators;

    #[test]
    fn full_pipeline_on_mot() {
        let g = generators::grid(6, 6).unwrap();
        let m = DistanceMatrix::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
        let w = WorkloadSpec::new(5, 100, 1).generate(&g);
        let publish_cost = run_publish(&mut t, &w).unwrap();
        assert!(publish_cost > 0.0);
        let stats = replay_moves(&mut t, &w, &m).unwrap();
        assert_eq!(stats.operations, 500);
        // random-walk moves are unit hops: optimal = #moves
        assert!((stats.optimal - 500.0).abs() < 1e-6);
        assert!(
            stats.ratio() >= 1.0,
            "ratio {} below optimal",
            stats.ratio()
        );
        // final proxies agree with the trace
        for (oi, &p) in w.final_proxies().iter().enumerate() {
            assert_eq!(t.proxy_of(ObjectId(oi as u32)), Some(p));
        }
        let q = run_queries(&t, &m, 5, 200, 9).unwrap();
        assert_eq!(q.correct, 200, "every query must find the true proxy");
        assert!(q.cost.ratio() >= 1.0);
    }

    #[test]
    fn local_queries_come_from_within_the_radius() {
        let g = generators::grid(8, 8).unwrap();
        let m = DistanceMatrix::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
        let w = WorkloadSpec::new(4, 50, 2).generate(&g);
        run_publish(&mut t, &w).unwrap();
        replay_moves(&mut t, &w, &m).unwrap();
        let q = run_local_queries(&t, &m, 4, 2.0, 150, 7).unwrap();
        assert_eq!(q.correct, 150);
        // optimal distances capped by the radius
        assert!(q.cost.optimal <= 2.0 * q.cost.operations as f64 + 1e-9);
        assert!(q.cost.mean_ratio() >= 1.0);
    }

    #[test]
    fn query_batch_counts_zero_distance_cases() {
        let g = generators::grid(3, 3).unwrap();
        let m = DistanceMatrix::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
        let mut t = MotTracker::new(&overlay, &m, MotConfig::plain());
        // park one object on every node: many queries hit distance zero
        let w = Workload {
            initial: g.nodes().collect(),
            moves: vec![],
        };
        run_publish(&mut t, &w).unwrap();
        let q = run_queries(&t, &m, 9, 300, 4).unwrap();
        assert!(q.zero_distance > 0);
        assert_eq!(q.correct, 300);
        assert_eq!(q.cost.operations + q.zero_distance, 300);
    }
}
