//! Detection rates — the traffic knowledge consumed by the baselines.
//!
//! Prior work weighs each sensor adjacency by how often objects cross it
//! (the *detection rate*) and shapes the tracking tree around those
//! weights. In the experiments the rates are measured from the very
//! workload that will be replayed — the strongest (most favorable) form
//! of traffic-consciousness, which makes the comparison conservative for
//! MOT.

use mot_net::{Graph, NodeId};
use std::collections::HashMap;

/// Per-edge crossing frequencies.
#[derive(Clone, Debug, Default)]
pub struct DetectionRates {
    rates: HashMap<(NodeId, NodeId), f64>,
}

fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl DetectionRates {
    /// No traffic knowledge: every adjacency weighs the same.
    pub fn uniform(g: &Graph) -> Self {
        let mut rates = HashMap::new();
        for (a, b, _) in g.edges() {
            rates.insert(key(a, b), 1.0);
        }
        DetectionRates { rates }
    }

    /// Measures rates from a move trace. Moves between adjacent proxies
    /// increment their edge; a move across several hops increments every
    /// edge of one shortest path (the object physically traversed it).
    pub fn from_moves(g: &Graph, moves: &[(NodeId, NodeId)]) -> Self {
        let mut r = DetectionRates::uniform(g);
        // Scale the uniform floor down so measured traffic dominates but
        // unvisited edges still carry a tiebreaker weight.
        for v in r.rates.values_mut() {
            *v = 1e-3;
        }
        for &(a, b) in moves {
            if a == b {
                continue;
            }
            if g.has_edge(a, b) {
                *r.rates.entry(key(a, b)).or_insert(0.0) += 1.0;
            } else {
                // Re-trace one shortest path and charge each hop.
                let tree = mot_net::shortest_path_tree(g, b);
                let path = tree.path_to_root(a);
                for w in path.windows(2) {
                    *r.rates.entry(key(w[0], w[1])).or_insert(0.0) += 1.0;
                }
            }
        }
        r
    }

    /// The rate of edge `(a, b)` (0 for non-edges).
    pub fn rate(&self, a: NodeId, b: NodeId) -> f64 {
        self.rates.get(&key(a, b)).copied().unwrap_or(0.0)
    }

    /// Total measured activity of a node — the sum of its incident edge
    /// rates (used by zone constructions to pick active heads).
    pub fn node_activity(&self, g: &Graph, u: NodeId) -> f64 {
        g.neighbors(u).iter().map(|e| self.rate(u, e.to)).sum()
    }

    /// All edges sorted by descending rate (DAB's merge order), ties by
    /// endpoint ids for determinism.
    pub fn edges_by_rate_desc(&self) -> Vec<(NodeId, NodeId, f64)> {
        let mut v: Vec<(NodeId, NodeId, f64)> =
            self.rates.iter().map(|(&(a, b), &r)| (a, b, r)).collect();
        v.sort_by(|x, y| {
            y.2.partial_cmp(&x.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.0.cmp(&y.0))
                .then(x.1.cmp(&y.1))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;

    #[test]
    fn uniform_rates_cover_all_edges() {
        let g = generators::grid(3, 3).unwrap();
        let r = DetectionRates::uniform(&g);
        for (a, b, _) in g.edges() {
            assert_eq!(r.rate(a, b), 1.0);
            assert_eq!(r.rate(b, a), 1.0);
        }
        assert_eq!(r.rate(NodeId(0), NodeId(8)), 0.0); // not an edge
    }

    #[test]
    fn moves_accumulate_on_their_edges() {
        let g = generators::grid(3, 3).unwrap();
        let moves = vec![
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(0)),
            (NodeId(4), NodeId(5)),
        ];
        let r = DetectionRates::from_moves(&g, &moves);
        assert!(r.rate(NodeId(0), NodeId(1)) > 1.9);
        assert!(r.rate(NodeId(4), NodeId(5)) > 0.9);
        assert!(
            r.rate(NodeId(7), NodeId(8)) < 0.01,
            "unvisited edge keeps floor rate"
        );
    }

    #[test]
    fn long_moves_charge_a_shortest_path() {
        let g = generators::line(5).unwrap();
        let r = DetectionRates::from_moves(&g, &[(NodeId(0), NodeId(4))]);
        for i in 0..4u32 {
            assert!(
                r.rate(NodeId(i), NodeId(i + 1)) >= 1.0,
                "edge {i} uncharged"
            );
        }
    }

    #[test]
    fn activity_sums_incident_edges() {
        let g = generators::grid(3, 3).unwrap();
        let r = DetectionRates::uniform(&g);
        assert_eq!(r.node_activity(&g, NodeId(4)), 4.0); // center degree 4
        assert_eq!(r.node_activity(&g, NodeId(0)), 2.0); // corner degree 2
    }

    #[test]
    fn descending_order_is_deterministic() {
        let g = generators::grid(3, 3).unwrap();
        let moves = vec![(NodeId(0), NodeId(1)); 5];
        let r = DetectionRates::from_moves(&g, &moves);
        let order = r.edges_by_rate_desc();
        assert_eq!((order[0].0, order[0].1), (NodeId(0), NodeId(1)));
        assert!(order.windows(2).all(|w| w[0].2 >= w[1].2));
    }
}
