//! Object mobility models and workload generation.
//!
//! The paper assumes the distance an object can traverse per unit time is
//! bounded, i.e. objects hand off between *adjacent* sensors. The random
//! walk model hops one adjacency per move (the classic tracking
//! workload); the waypoint model walks shortest paths toward successive
//! random targets, producing directional traces with hot corridors —
//! traffic the rate-conscious baselines can genuinely exploit. The
//! scenario suite (DESIGN.md §18) adds Lévy flights (heavy-tailed flight
//! lengths), hotspot flows (rank-weighted popular destinations), and the
//! ping-pong adversary (two fixed anchors hammered forever — pin them at
//! a cluster boundary and every hop crosses the structure's worst cut).

use mot_core::ObjectId;
use mot_net::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// How objects pick their next proxy.
///
/// All models emit *adjacent-hop* move sequences (the paper's
/// bounded-speed assumption); they differ only in how targets are
/// chosen. Models with parameters are built via the constructors
/// ([`MobilityModel::levy`], [`MobilityModel::hotspot`],
/// [`MobilityModel::ping_pong`]), each of whose doc-tests pins a 3-step
/// deterministic trajectory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MobilityModel {
    /// Uniform hop to a random adjacent sensor per move.
    RandomWalk,
    /// Walk a shortest path toward a random waypoint; pick a new waypoint
    /// on arrival.
    Waypoint,
    /// Shuttle between two fixed anchor sensors along shortest paths —
    /// the most predictable traffic possible, i.e. the *best case* for
    /// the traffic-conscious baselines (every crossing is on one hot
    /// corridor the rate-built trees can hug) and therefore the honest
    /// stress test for MOT's traffic-obliviousness claim.
    Commuter,
    /// Lévy flight: successive shortest-path flights whose lengths are
    /// drawn from a bounded Pareto distribution with tail exponent
    /// `alpha` — mostly short relocations punctuated by rare
    /// network-spanning jumps (the classic animal/human mobility
    /// pattern). Smaller `alpha` = heavier tail = more long flights.
    Levy {
        /// Pareto tail exponent (sensible range ~1.0–2.5).
        alpha: f64,
    },
    /// Hotspot flow: with probability `locality` the next destination is
    /// one of `hotspots` fixed anchor sensors (rank-weighted — anchor
    /// `i` drawn proportionally to `1/(i+1)`), otherwise a uniform
    /// random sensor. Models commuter traffic converging on a few
    /// popular sites, concentrating load where trees are weakest.
    Hotspot {
        /// Number of shared anchor sensors (drawn once per workload).
        hotspots: usize,
        /// Probability a flight targets a hotspot rather than a uniform
        /// random sensor.
        locality: f64,
    },
    /// Adversarial ping-pong: every object shuttles between two fixed
    /// adjacent sensors forever (objects start at `a`). Pin `(a, b)` at
    /// a cluster boundary ([`crate::TestBed::boundary_pair`]) or on a
    /// spanning tree's missing ring edge and every unit move crosses
    /// the structure's most expensive cut — the constructive form of
    /// the paper's lower-bound discussion for fixed trees.
    PingPong {
        /// First anchor; all objects start here.
        a: NodeId,
        /// Second anchor (adjacent to `a` for unit-hop adversaries).
        b: NodeId,
    },
}

impl MobilityModel {
    /// A Lévy-flight mover with tail exponent `alpha`.
    ///
    /// ```
    /// use mot_sim::{MobilityModel, WorkloadSpec};
    /// let g = mot_net::generators::grid(4, 4)?;
    /// let spec = WorkloadSpec {
    ///     objects: 1,
    ///     moves_per_object: 3,
    ///     model: MobilityModel::levy(1.6),
    ///     seed: 7,
    /// };
    /// let first = spec.generate(&g);
    /// let again = spec.generate(&g);
    /// assert_eq!(first.moves, again.moves, "same seed ⇒ same trajectory");
    /// assert_eq!(first.moves.len(), 3);
    /// for m in &first.moves {
    ///     assert!(g.has_edge(m.from, m.to)); // flights walk graph edges
    /// }
    /// # Ok::<(), mot_net::NetError>(())
    /// ```
    pub fn levy(alpha: f64) -> Self {
        MobilityModel::Levy { alpha }
    }

    /// A hotspot-flow mover over `hotspots` shared anchors targeted
    /// with probability `locality`.
    ///
    /// ```
    /// use mot_sim::{MobilityModel, WorkloadSpec};
    /// let g = mot_net::generators::grid(4, 4)?;
    /// let spec = WorkloadSpec {
    ///     objects: 1,
    ///     moves_per_object: 3,
    ///     model: MobilityModel::hotspot(3, 0.8),
    ///     seed: 5,
    /// };
    /// let first = spec.generate(&g);
    /// let again = spec.generate(&g);
    /// assert_eq!(first.moves, again.moves, "same seed ⇒ same trajectory");
    /// assert_eq!(first.moves.len(), 3);
    /// for m in &first.moves {
    ///     assert!(g.has_edge(m.from, m.to));
    /// }
    /// # Ok::<(), mot_net::NetError>(())
    /// ```
    pub fn hotspot(hotspots: usize, locality: f64) -> Self {
        MobilityModel::Hotspot { hotspots, locality }
    }

    /// A ping-pong adversary shuttling every object between `a` and `b`.
    ///
    /// ```
    /// use mot_net::NodeId;
    /// use mot_sim::{MobilityModel, WorkloadSpec};
    /// let g = mot_net::generators::grid(4, 4)?;
    /// let spec = WorkloadSpec {
    ///     objects: 1,
    ///     moves_per_object: 3,
    ///     model: MobilityModel::ping_pong(NodeId(5), NodeId(6)),
    ///     seed: 1,
    /// };
    /// let w = spec.generate(&g);
    /// // Deterministic regardless of seed: a→b→a→b.
    /// let hops: Vec<(NodeId, NodeId)> = w.moves.iter().map(|m| (m.from, m.to)).collect();
    /// assert_eq!(
    ///     hops,
    ///     vec![
    ///         (NodeId(5), NodeId(6)),
    ///         (NodeId(6), NodeId(5)),
    ///         (NodeId(5), NodeId(6)),
    ///     ]
    /// );
    /// # Ok::<(), mot_net::NetError>(())
    /// ```
    pub fn ping_pong(a: NodeId, b: NodeId) -> Self {
        MobilityModel::PingPong { a, b }
    }
}

/// Shortest path `cur → target` excluding `cur`, reversed so callers
/// `pop()` successive hops from the end. Shared by workload generation
/// and the op stream's flight planner.
pub(crate) fn flight_to(g: &Graph, cur: NodeId, target: NodeId) -> Vec<NodeId> {
    let tree = mot_net::shortest_path_tree(g, target);
    let mut path = tree.path_to_root(cur);
    path.remove(0);
    path.reverse();
    path
}

/// Draws a Lévy-flight destination from `cur`: flight length from a
/// bounded Pareto on `[1, eccentricity(cur)]` via inverse CDF, landing
/// on a node whose distance best matches the drawn length (±half a hop
/// of the best match keeps the candidate set non-empty). Consumes
/// exactly one `f64` and one `gen_range` draw.
pub(crate) fn levy_target<R: Rng>(g: &Graph, cur: NodeId, alpha: f64, rng: &mut R) -> NodeId {
    let d = mot_net::dijkstra(g, cur);
    let dmax = d
        .iter()
        .copied()
        .filter(|x| x.is_finite())
        .fold(1.0_f64, f64::max);
    let u: f64 = rng.gen();
    let len = if (alpha - 1.0).abs() < 1e-9 {
        dmax.powf(u)
    } else {
        let e = 1.0 - alpha;
        (u * (dmax.powf(e) - 1.0) + 1.0).powf(1.0 / e)
    };
    let mut best = f64::INFINITY;
    for (vi, dv) in d.iter().enumerate() {
        if vi != cur.index() && dv.is_finite() {
            best = best.min((dv - len).abs());
        }
    }
    let candidates: Vec<NodeId> = d
        .iter()
        .enumerate()
        .filter(|&(vi, dv)| vi != cur.index() && dv.is_finite() && (dv - len).abs() <= best + 0.5)
        .map(|(vi, _)| NodeId::from_index(vi))
        .collect();
    candidates[rng.gen_range(0..candidates.len())]
}

/// Draws a hotspot-flow destination: with probability `locality` a
/// rank-weighted anchor (anchor `i` proportional to `1/(i+1)`),
/// otherwise a uniform random node. May return the caller's current
/// position — callers fall back to an adjacent hop in that case.
pub(crate) fn hotspot_target<R: Rng>(
    g: &Graph,
    anchors: &[NodeId],
    locality: f64,
    rng: &mut R,
) -> NodeId {
    if rng.gen::<f64>() < locality {
        let total: f64 = (0..anchors.len()).map(|i| 1.0 / (i as f64 + 1.0)).sum();
        let mut x = rng.gen::<f64>() * total;
        let mut pick = anchors.len() - 1;
        for i in 0..anchors.len() {
            let w = 1.0 / (i as f64 + 1.0);
            if x < w {
                pick = i;
                break;
            }
            x -= w;
        }
        anchors[pick]
    } else {
        NodeId::from_index(rng.gen_range(0..g.node_count()))
    }
}

/// One maintenance operation: object `object` moves `from → to`
/// (`from` is recorded so optimal costs and detection rates don't need
/// replaying).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoveOp {
    /// The moving object.
    pub object: ObjectId,
    /// Proxy the object departs (its pre-move detector).
    pub from: NodeId,
    /// Proxy the object arrives at (its new detector).
    pub to: NodeId,
}

/// A complete generated workload.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Initial proxy per object (index = object id).
    pub initial: Vec<NodeId>,
    /// Moves in a random global interleaving that preserves each object's
    /// own order (the paper replays "operations per object in random
    /// order").
    pub moves: Vec<MoveOp>,
}

impl Workload {
    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.initial.len()
    }

    /// The `(from, to)` pairs — input for
    /// `mot_baselines::DetectionRates::from_moves` (the baselines'
    /// traffic knowledge).
    pub fn move_pairs(&self) -> Vec<(NodeId, NodeId)> {
        self.moves.iter().map(|m| (m.from, m.to)).collect()
    }

    /// Final proxy of every object after the full replay.
    pub fn final_proxies(&self) -> Vec<NodeId> {
        let mut p = self.initial.clone();
        for m in &self.moves {
            p[m.object.index()] = m.to;
        }
        p
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of tracked objects.
    pub objects: usize,
    /// Moves generated per object.
    pub moves_per_object: usize,
    /// Mobility model driving the trace.
    pub model: MobilityModel,
    /// RNG seed — the same spec always generates the same workload.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Convenience constructor for the paper's standard workload shape.
    pub fn new(objects: usize, moves_per_object: usize, seed: u64) -> Self {
        WorkloadSpec {
            objects,
            moves_per_object,
            model: MobilityModel::RandomWalk,
            seed,
        }
    }

    /// Generates the workload on `g`.
    ///
    /// RNG discipline (DESIGN.md §18): the draw sequence of the three
    /// original models is frozen — new models only *add* draws inside
    /// their own arms (plus the hotspot anchor header below, emitted
    /// only for [`MobilityModel::Hotspot`]) — so pre-scenario workloads
    /// are bit-identical to what this function generated before the
    /// scenario layer existed.
    pub fn generate(&self, g: &Graph) -> Workload {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = g.node_count();
        let mut initial: Vec<NodeId> = (0..self.objects)
            .map(|_| NodeId::from_index(rng.gen_range(0..n)))
            .collect();
        // Ping-pong adversaries start every object at anchor `a`: the
        // uniform draws above still happen (keeping the header layout
        // identical across models) but the values are overridden.
        if let MobilityModel::PingPong { a, .. } = self.model {
            for p in initial.iter_mut() {
                *p = a;
            }
        }
        // Hotspot anchors are shared across objects (popular sites are a
        // property of the field, not of one mover) and drawn only for
        // the hotspot model, so other models' streams are untouched.
        let hotspot_anchors: Vec<NodeId> = match self.model {
            MobilityModel::Hotspot { hotspots, .. } => {
                let k = hotspots.clamp(1, n);
                let mut anchors: Vec<NodeId> = Vec::with_capacity(k);
                while anchors.len() < k {
                    let t = NodeId::from_index(rng.gen_range(0..n));
                    if !anchors.contains(&t) {
                        anchors.push(t);
                    }
                }
                anchors
            }
            _ => Vec::new(),
        };

        // Per-object move sequences.
        let mut per_object: Vec<Vec<MoveOp>> = Vec::with_capacity(self.objects);
        for (oi, &start) in initial.iter().enumerate() {
            let o = ObjectId(oi as u32);
            let mut seq = Vec::with_capacity(self.moves_per_object);
            let mut cur = start;
            let mut waypoint_path: Vec<NodeId> = Vec::new();
            // Commuter state: the opposite anchor (the walk shuttles
            // start <-> anchor forever).
            let far_anchor = loop {
                let t = NodeId::from_index(rng.gen_range(0..n));
                if t != start {
                    break t;
                }
            };
            let mut heading_out = true;
            for _ in 0..self.moves_per_object {
                let next = match self.model {
                    MobilityModel::RandomWalk => {
                        let nbrs = g.neighbors(cur);
                        nbrs[rng.gen_range(0..nbrs.len())].to
                    }
                    MobilityModel::Waypoint => {
                        if waypoint_path.is_empty() {
                            let target = loop {
                                let t = NodeId::from_index(rng.gen_range(0..n));
                                if t != cur {
                                    break t;
                                }
                            };
                            // shortest path cur -> target, excluding cur
                            let tree = mot_net::shortest_path_tree(g, target);
                            let mut path = tree.path_to_root(cur);
                            path.remove(0);
                            path.reverse(); // will pop() from the cur-end
                            waypoint_path = path;
                        }
                        waypoint_path.pop().expect("refilled above")
                    }
                    MobilityModel::Commuter => {
                        if waypoint_path.is_empty() {
                            let target = if heading_out { far_anchor } else { start };
                            heading_out = !heading_out;
                            if target == cur {
                                // degenerate: anchors adjacent loops; hop away
                                let nbrs = g.neighbors(cur);
                                waypoint_path = vec![nbrs[0].to];
                            } else {
                                let tree = mot_net::shortest_path_tree(g, target);
                                let mut path = tree.path_to_root(cur);
                                path.remove(0);
                                path.reverse();
                                waypoint_path = path;
                            }
                        }
                        waypoint_path.pop().expect("refilled above")
                    }
                    MobilityModel::Levy { alpha } => {
                        if waypoint_path.is_empty() {
                            let target = levy_target(g, cur, alpha, &mut rng);
                            waypoint_path = flight_to(g, cur, target);
                        }
                        waypoint_path.pop().expect("refilled above")
                    }
                    MobilityModel::Hotspot { locality, .. } => {
                        if waypoint_path.is_empty() {
                            let target = hotspot_target(g, &hotspot_anchors, locality, &mut rng);
                            if target == cur {
                                // Already at the destination: hop away so
                                // the move count stays on schedule.
                                let nbrs = g.neighbors(cur);
                                waypoint_path = vec![nbrs[rng.gen_range(0..nbrs.len())].to];
                            } else {
                                waypoint_path = flight_to(g, cur, target);
                            }
                        }
                        waypoint_path.pop().expect("refilled above")
                    }
                    MobilityModel::PingPong { a, b } => {
                        if waypoint_path.is_empty() {
                            let target = if cur == a { b } else { a };
                            if target == cur {
                                // Degenerate a == b spec: behave like the
                                // commuter's adjacent-anchor fallback.
                                let nbrs = g.neighbors(cur);
                                waypoint_path = vec![nbrs[0].to];
                            } else {
                                waypoint_path = flight_to(g, cur, target);
                            }
                        }
                        waypoint_path.pop().expect("refilled above")
                    }
                };
                seq.push(MoveOp {
                    object: o,
                    from: cur,
                    to: next,
                });
                cur = next;
            }
            per_object.push(seq);
        }

        // Random global interleaving preserving per-object order: shuffle
        // a deck with `moves_per_object` copies of each object id.
        let mut deck: Vec<usize> = (0..self.objects)
            .flat_map(|oi| std::iter::repeat_n(oi, self.moves_per_object))
            .collect();
        deck.shuffle(&mut rng);
        let mut cursors = vec![0usize; self.objects];
        let mut moves = Vec::with_capacity(deck.len());
        for oi in deck {
            moves.push(per_object[oi][cursors[oi]]);
            cursors[oi] += 1;
        }
        Workload { initial, moves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;

    #[test]
    fn random_walk_moves_are_adjacent() {
        let g = generators::grid(5, 5).unwrap();
        let w = WorkloadSpec::new(4, 50, 7).generate(&g);
        assert_eq!(w.object_count(), 4);
        assert_eq!(w.moves.len(), 200);
        for m in &w.moves {
            assert!(g.has_edge(m.from, m.to), "move {m:?} not an adjacency");
        }
    }

    #[test]
    fn per_object_order_is_a_consistent_walk() {
        let g = generators::grid(4, 4).unwrap();
        let w = WorkloadSpec::new(3, 40, 9).generate(&g);
        let mut pos = w.initial.clone();
        for m in &w.moves {
            assert_eq!(m.from, pos[m.object.index()], "broken chain at {m:?}");
            pos[m.object.index()] = m.to;
        }
        assert_eq!(pos, w.final_proxies());
    }

    #[test]
    fn interleaving_mixes_objects() {
        let g = generators::grid(4, 4).unwrap();
        let w = WorkloadSpec::new(2, 100, 3).generate(&g);
        // the first 100 moves should not all belong to object 0
        let first_obj: Vec<_> = w.moves[..100].iter().map(|m| m.object).collect();
        assert!(first_obj.contains(&ObjectId(0)));
        assert!(first_obj.contains(&ObjectId(1)));
    }

    #[test]
    fn waypoint_walks_shortest_paths() {
        let g = generators::grid(6, 6).unwrap();
        let spec = WorkloadSpec {
            objects: 2,
            moves_per_object: 60,
            model: MobilityModel::Waypoint,
            seed: 5,
        };
        let w = spec.generate(&g);
        for m in &w.moves {
            assert!(g.has_edge(m.from, m.to), "waypoint hop {m:?} not an edge");
        }
    }

    #[test]
    fn commuter_shuttles_along_one_corridor() {
        let g = generators::grid(8, 8).unwrap();
        let spec = WorkloadSpec {
            objects: 1,
            moves_per_object: 120,
            model: MobilityModel::Commuter,
            seed: 6,
        };
        let w = spec.generate(&g);
        for m in &w.moves {
            assert!(g.has_edge(m.from, m.to));
        }
        // a commuter revisits a small set of edges over and over
        let mut edges = std::collections::HashSet::new();
        for m in &w.moves {
            let (a, b) = if m.from < m.to {
                (m.from, m.to)
            } else {
                (m.to, m.from)
            };
            edges.insert((a, b));
        }
        assert!(
            edges.len() * 3 <= w.moves.len(),
            "commuter used {} distinct edges over {} moves — not a corridor",
            edges.len(),
            w.moves.len()
        );
    }

    #[test]
    fn levy_walks_edges_with_heavy_tailed_flights() {
        let g = generators::grid(8, 8).unwrap();
        let spec = WorkloadSpec {
            objects: 2,
            moves_per_object: 150,
            model: MobilityModel::levy(1.4),
            seed: 13,
        };
        let w = spec.generate(&g);
        for m in &w.moves {
            assert!(g.has_edge(m.from, m.to), "levy hop {m:?} not an edge");
        }
        // The per-object trace must visit a wide spread of the field:
        // heavy-tailed flights occasionally span the network, so a
        // 150-move trace cannot stay confined to a tiny patch.
        let visited: std::collections::HashSet<_> = w.moves.iter().map(|m| m.to).collect();
        assert!(
            visited.len() >= 16,
            "levy trace visited only {} sensors",
            visited.len()
        );
    }

    #[test]
    fn hotspot_traffic_concentrates_on_anchors() {
        let g = generators::grid(8, 8).unwrap();
        let spec = WorkloadSpec {
            objects: 6,
            moves_per_object: 80,
            model: MobilityModel::hotspot(3, 0.9),
            seed: 21,
        };
        let w = spec.generate(&g);
        for m in &w.moves {
            assert!(g.has_edge(m.from, m.to));
        }
        // Flight endpoints pile up on the 3 shared anchors: the three
        // most-visited sensors must absorb well above the uniform share
        // of arrivals (3/64 ≈ 5% — demand ≥ 20%).
        let mut arrivals = vec![0usize; 64];
        for m in &w.moves {
            arrivals[m.to.index()] += 1;
        }
        arrivals.sort_unstable_by(|a, b| b.cmp(a));
        let top3: usize = arrivals[..3].iter().sum();
        assert!(
            top3 * 5 >= w.moves.len(),
            "top-3 sensors absorbed {top3}/{} arrivals — no hotspot",
            w.moves.len()
        );
    }

    #[test]
    fn ping_pong_alternates_between_the_anchors() {
        let g = generators::grid(5, 5).unwrap();
        let (a, b) = (NodeId(7), NodeId(8));
        let spec = WorkloadSpec {
            objects: 3,
            moves_per_object: 20,
            model: MobilityModel::ping_pong(a, b),
            seed: 2,
        };
        let w = spec.generate(&g);
        assert!(w.initial.iter().all(|&p| p == a), "objects start at a");
        for m in &w.moves {
            assert!(
                (m.from == a && m.to == b) || (m.from == b && m.to == a),
                "ping-pong hop {m:?} left the anchor pair"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(4, 4).unwrap();
        let a = WorkloadSpec::new(3, 20, 11).generate(&g);
        let b = WorkloadSpec::new(3, 20, 11).generate(&g);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.moves, b.moves);
        let c = WorkloadSpec::new(3, 20, 12).generate(&g);
        assert_ne!(a.moves, c.moves);
    }
}
