//! Backend parity: the lazy, cached, and hybrid oracles must agree
//! with the dense matrix on every query the tracking stack issues.
//!
//! `dist` and `ball` agree *exactly* — all backends quantize through
//! `f32` and Dijkstra is deterministic, so swapping backends can never
//! change a cost account. `diameter` is exact for dense; the lazy /
//! cached double-sweep estimate must sit in the documented `[D/2, D]`
//! band (and be exact on grids).

use mot_net::{
    generators, CachedOracle, DenseOracle, DistanceOracle, Graph, HybridOracle, LazyOracle, NodeId,
    OracleKind,
};

/// The topology families the evaluation sweeps.
fn topologies() -> Vec<(String, Graph)> {
    let mut out: Vec<(String, Graph)> = vec![
        ("grid-9x7".into(), generators::grid(9, 7).unwrap()),
        ("ring-40".into(), generators::ring(40).unwrap()),
        ("line-30".into(), generators::line(30).unwrap()),
        ("torus-6x6".into(), generators::torus(6, 6).unwrap()),
    ];
    for seed in [2, 11, 29] {
        out.push((
            format!("udg-{seed}"),
            generators::random_geometric(50, 8.0, 2.5, seed).unwrap(),
        ));
    }
    for seed in [5, 13] {
        out.push((
            format!("tree-{seed}"),
            generators::random_tree(45, seed).unwrap(),
        ));
    }
    out
}

/// Every on-demand backend over the same graph; hybrid gets a pinned
/// subset so both its row paths (pinned and LRU) are exercised, and
/// cached runs once with its default budget (promotion-heavy under the
/// exhaustive query sweeps) and once with a two-row budget so the
/// eviction-then-recompute path is exercised on every topology.
fn backends(g: &Graph) -> Vec<(&'static str, Box<dyn DistanceOracle>)> {
    let hybrid = HybridOracle::new(g).unwrap();
    let pins: Vec<NodeId> = g.nodes().step_by(4).collect();
    hybrid.pin(&pins);
    let two_rows = 2 * 12 * g.node_count();
    vec![
        (
            "lazy",
            Box::new(LazyOracle::new(g).unwrap()) as Box<dyn DistanceOracle>,
        ),
        (
            "lazy-tiny-cache",
            Box::new(LazyOracle::with_row_capacity(g, 2).unwrap()),
        ),
        ("cached", Box::new(CachedOracle::new(g).unwrap())),
        (
            "cached-tiny-budget",
            Box::new(CachedOracle::with_byte_budget(g, two_rows).unwrap()),
        ),
        ("hybrid", Box::new(hybrid)),
    ]
}

#[test]
fn dist_is_bit_identical_across_backends() {
    for (name, g) in topologies() {
        let dense = DenseOracle::build(&g).unwrap();
        for (backend, oracle) in backends(&g) {
            assert_eq!(oracle.node_count(), dense.node_count(), "{name}/{backend}");
            for u in g.nodes() {
                for v in g.nodes() {
                    let (got, want) = (oracle.dist(u, v), dense.dist(u, v));
                    assert!(
                        got == want,
                        "{name}/{backend}: dist({u},{v}) = {got} != {want}"
                    );
                }
            }
        }
    }
}

#[test]
fn ball_contents_and_order_match_dense() {
    for (name, g) in topologies() {
        let dense = DenseOracle::build(&g).unwrap();
        let radii = [
            0.0,
            0.5,
            1.0,
            2.0,
            3.5,
            dense.diameter() / 2.0,
            dense.diameter(),
        ];
        for (backend, oracle) in backends(&g) {
            for u in g.nodes().step_by(3) {
                for r in radii {
                    assert_eq!(
                        oracle.ball(u, r),
                        dense.ball(u, r),
                        "{name}/{backend}: ball({u}, {r})"
                    );
                    assert_eq!(
                        oracle.ball_size(u, r),
                        dense.ball_size(u, r),
                        "{name}/{backend}: ball_size({u}, {r})"
                    );
                }
            }
        }
    }
}

#[test]
fn nearest_and_walks_match_dense() {
    for (name, g) in topologies() {
        let dense = DenseOracle::build(&g).unwrap();
        let candidates: Vec<NodeId> = g.nodes().step_by(5).collect();
        let walk: Vec<NodeId> = g.nodes().step_by(7).collect();
        for (backend, oracle) in backends(&g) {
            for u in g.nodes().step_by(2) {
                assert_eq!(
                    oracle.nearest_in(u, &candidates),
                    dense.nearest_in(u, &candidates),
                    "{name}/{backend}: nearest_in({u})"
                );
            }
            assert_eq!(
                oracle.walk_length(&walk),
                dense.walk_length(&walk),
                "{name}/{backend}"
            );
        }
    }
}

#[test]
fn diameter_estimates_stay_in_the_documented_band() {
    for (name, g) in topologies() {
        let exact = DenseOracle::build(&g).unwrap().diameter();
        for (backend, oracle) in backends(&g) {
            let est = oracle.diameter();
            assert!(
                est <= exact + 1e-9 && est >= exact / 2.0 - 1e-9,
                "{name}/{backend}: diameter estimate {est} outside [{}, {exact}]",
                exact / 2.0
            );
        }
    }
}

#[test]
fn diameter_is_exact_on_grids_and_trees() {
    // Double sweep is exact on trees; on grids the corner reached by the
    // first sweep realizes the true diameter.
    for (name, g) in [
        ("grid", generators::grid(12, 9).unwrap()),
        ("line", generators::line(64).unwrap()),
        ("tree", generators::random_tree(80, 3).unwrap()),
    ] {
        let exact = DenseOracle::build(&g).unwrap().diameter();
        let lazy = LazyOracle::new(&g).unwrap();
        assert_eq!(lazy.diameter(), exact, "{name}");
    }
}

#[test]
fn factory_backends_agree_on_shared_queries() {
    let g = generators::grid(10, 10).unwrap();
    let oracles: Vec<Box<dyn DistanceOracle>> = [
        OracleKind::Dense,
        OracleKind::Lazy,
        OracleKind::Cached,
        OracleKind::Hybrid,
        OracleKind::Auto,
    ]
    .into_iter()
    .map(|k| k.build(&g).unwrap())
    .collect();
    for u in g.nodes().step_by(3) {
        for v in g.nodes().step_by(4) {
            let d0 = oracles[0].dist(u, v);
            for o in &oracles[1..] {
                assert_eq!(o.dist(u, v), d0, "({u},{v})");
            }
        }
    }
    for o in &oracles {
        assert_eq!(o.diameter(), 18.0);
    }
}
