//! All-pairs distance oracle.
//!
//! Hierarchy construction repeatedly asks "which nodes lie within `2^ℓ` of
//! `u`?" and every cost account is a sum of `dist_G(·,·)` terms, so the
//! suite precomputes the full distance matrix once per topology. Sources
//! are solved with Dijkstra in parallel across `std::thread::scope`
//! workers; entries are stored as `f32` (1024² ⇒ 4 MiB) which is far more
//! precision than the unit-normalized weights require.

use crate::dijkstra::dijkstra;
use crate::error::NetError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;

/// Symmetric all-pairs shortest-path distance matrix.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f32>,
    diameter: f64,
}

impl DistanceMatrix {
    /// Computes all-pairs shortest paths for a connected graph, in
    /// parallel. Fails with [`NetError::Disconnected`] otherwise.
    pub fn build(g: &Graph) -> Result<Self> {
        if g.node_count() == 0 {
            return Err(NetError::EmptyGraph);
        }
        if !g.is_connected() {
            return Err(NetError::Disconnected);
        }
        let n = g.node_count();
        let mut data = vec![0f32; n * n];
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        let rows_per = n.div_ceil(threads);
        std::thread::scope(|s| {
            for (chunk_idx, chunk) in data.chunks_mut(rows_per * n).enumerate() {
                let start = chunk_idx * rows_per;
                s.spawn(move || {
                    for (row_off, row) in chunk.chunks_mut(n).enumerate() {
                        let src = NodeId::from_index(start + row_off);
                        let d = dijkstra(g, src);
                        for (cell, dv) in row.iter_mut().zip(d) {
                            *cell = dv as f32;
                        }
                    }
                });
            }
        });
        let diameter = data.iter().copied().fold(0f32, f32::max) as f64;
        Ok(DistanceMatrix { n, data, diameter })
    }

    /// Number of nodes covered by the matrix.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Shortest-path distance between `u` and `v`.
    #[inline]
    pub fn dist(&self, u: NodeId, v: NodeId) -> f64 {
        self.data[u.index() * self.n + v.index()] as f64
    }

    /// Network diameter `D = max_{u,v} dist(u, v)`.
    #[inline]
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// All nodes within distance `r` of `u` (inclusive; includes `u`) —
    /// the paper's `k`-neighborhood `N(u, r)`.
    pub fn ball(&self, u: NodeId, r: f64) -> Vec<NodeId> {
        let row = &self.data[u.index() * self.n..(u.index() + 1) * self.n];
        row.iter()
            .enumerate()
            .filter(|(_, &d)| (d as f64) <= r)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Number of nodes within distance `r` of `u` (inclusive).
    pub fn ball_size(&self, u: NodeId, r: f64) -> usize {
        let row = &self.data[u.index() * self.n..(u.index() + 1) * self.n];
        row.iter().filter(|&&d| (d as f64) <= r).count()
    }

    /// The member of `candidates` nearest to `u`, ties broken by smallest
    /// node id (the paper breaks parent ties arbitrarily; ID order keeps
    /// runs reproducible). Returns `None` on an empty candidate list.
    pub fn nearest_in(&self, u: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        candidates.iter().copied().min_by(|&a, &b| {
            self.dist(u, a)
                .partial_cmp(&self.dist(u, b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        })
    }

    /// Total length of a node walk `p_0 → p_1 → … → p_k` where consecutive
    /// hops travel along shortest physical paths (the cost model for all
    /// overlay messages).
    pub fn walk_length(&self, walk: &[NodeId]) -> f64 {
        walk.windows(2).map(|w| self.dist(w[0], w[1])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn matrix_matches_per_source_dijkstra() {
        let g = generators::grid(6, 5).unwrap();
        let m = DistanceMatrix::build(&g).unwrap();
        for s in g.nodes() {
            let d = dijkstra(&g, s);
            for t in g.nodes() {
                assert!(
                    (m.dist(s, t) - d[t.index()]).abs() < 1e-5,
                    "({s},{t}): {} vs {}",
                    m.dist(s, t),
                    d[t.index()]
                );
            }
        }
    }

    #[test]
    fn symmetric_and_zero_diagonal() {
        let g = generators::random_geometric(60, 8.0, 2.0, 3).unwrap();
        let m = DistanceMatrix::build(&g).unwrap();
        for u in g.nodes() {
            assert_eq!(m.dist(u, u), 0.0);
            for v in g.nodes() {
                assert!((m.dist(u, v) - m.dist(v, u)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn grid_diameter_is_manhattan_extent() {
        let g = generators::grid(8, 8).unwrap();
        let m = DistanceMatrix::build(&g).unwrap();
        assert_eq!(m.diameter(), 14.0);
    }

    #[test]
    fn ball_queries() {
        let g = generators::grid(5, 5).unwrap();
        let m = DistanceMatrix::build(&g).unwrap();
        let center = NodeId(12); // (2,2)
        let b1 = m.ball(center, 1.0);
        assert_eq!(b1.len(), 5); // self + 4 neighbors
        assert!(b1.contains(&center));
        assert_eq!(m.ball_size(center, 0.0), 1);
        assert_eq!(m.ball_size(center, 100.0), 25);
    }

    #[test]
    fn nearest_in_breaks_ties_by_id() {
        let g = generators::grid(3, 3).unwrap();
        let m = DistanceMatrix::build(&g).unwrap();
        // nodes 1 and 3 are both at distance 1 from node 0
        let got = m.nearest_in(NodeId(0), &[NodeId(3), NodeId(1)]);
        assert_eq!(got, Some(NodeId(1)));
        assert_eq!(m.nearest_in(NodeId(0), &[]), None);
    }

    #[test]
    fn walk_length_sums_hops() {
        let g = generators::line(5).unwrap();
        let m = DistanceMatrix::build(&g).unwrap();
        let walk = [NodeId(0), NodeId(4), NodeId(2)];
        assert_eq!(m.walk_length(&walk), 4.0 + 2.0);
        assert_eq!(m.walk_length(&[NodeId(3)]), 0.0);
        assert_eq!(m.walk_length(&[]), 0.0);
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = crate::builder::GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        let g = b.build_unchecked();
        assert!(matches!(
            DistanceMatrix::build(&g),
            Err(NetError::Disconnected)
        ));
    }
}
