//! Workspace-local stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: [`RngCore`], [`SeedableRng`] (with the rand_core
//! PCG-based `seed_from_u64` expansion), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The build environment has no registry access, so the workspace
//! vendors this minimal implementation instead of the crates.io `rand`.
//! It is API-compatible with every call site in the repo; the only
//! generator shipped on top of it is `rand_chacha::ChaCha8Rng` (also a
//! workspace shim), so all experiment streams remain fully
//! deterministic per seed.

use core::ops::{Range, RangeInclusive};

/// Low-level generator interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable generators, mirroring `rand_core::SeedableRng`.
///
/// `seed_from_u64` uses the same PCG-based key expansion as rand_core
/// 0.6, so seeds map to the same ChaCha key material as the real crate.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(mut state: u64) -> Self {
        // PCG32 output fills the seed 4 bytes at a time (rand_core's
        // exact expansion, kept so seeds match the real crate's).
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let out = xorshifted.rotate_right(rot);
            let bytes = out.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly from raw generator output (`Rng::gen`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by rejection sampling (unbiased).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of span that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // full-width inclusive range
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng); // [0, 1)
        let v = self.start + (self.end - self.start) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 53-bit fraction in [0, 1].
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + (end - start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::sample(rng);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// User-facing extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice sampling helpers (`rand::seq` subset).

    use super::Rng;

    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `rand::prelude`.
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Standard;

    /// Deterministic xorshift generator for exercising the traits.
    struct XorShift(u64);

    impl crate::RngCore for XorShift {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = XorShift(0x1234_5678_9abc_def0);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5..=2.5f64);
            assert!((-2.5..=2.5).contains(&f));
            let h = rng.gen_range(0.25..4.0f64);
            assert!((0.25..4.0).contains(&h));
        }
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = XorShift(42);
        for _ in 0..1000 {
            let f: f64 = f64::sample(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = XorShift(7);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = XorShift(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
