//! Overlay construction for constant-doubling networks (§2.2).
//!
//! Level 0 contains every sensor. Level `ℓ+1` is a maximal independent set
//! of the connectivity graph `I_ℓ = (V_ℓ, E_ℓ)` where `E_ℓ` joins level-ℓ
//! members closer than `2^{ℓ+1}`; consequently level-(ℓ+1) members are
//! pairwise `≥ 2^{ℓ+1}` apart and every level-ℓ member lies within
//! `2^{ℓ+1}` of one (its *default parent*). Construction ends when a level
//! holds a single member — the root. `h ≤ ⌈log D⌉ + 1` levels.
//!
//! # Hot path
//!
//! Construction used to scan all-pairs oracle distances: `O(k²)` virtual
//! `dist` calls per level for the connectivity graph and `O(n · k_ℓ)`
//! more for the detection-path stations. It now runs radius-bounded
//! Dijkstra (`bounded_ball` on a reusable
//! [`mot_net::DijkstraWorkspace`]) straight over the
//! CSR graph, touching only the `O(2^{dim·ℓ})`-sized neighborhoods the
//! doubling predicate actually inspects, and caches stations per
//! `(level, home)` pair — every node whose detection path passes through
//! the same home shares the same station set by definition. All
//! predicates quantize the exact f64 Dijkstra distances through `f32`
//! before comparing, exactly like every oracle backend does, so the
//! overlay is bit-identical to the oracle-scan construction (enforced by
//! the `hierarchy_parity` tests and the frozen reference builder in
//! `mot-bench`). See DESIGN.md §13.

use crate::config::OverlayConfig;
use crate::mis::luby_mis;
use crate::overlay::{Overlay, OverlayKind};
use crate::path::DetectionPath;
use mot_net::{DijkstraWorkspace, DistanceOracle, Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Relative padding applied to bounded-ball radii when the selection
/// predicate compares f32-quantized distances with `<=`: quantization
/// can round a distance just above the radius down onto it, so the ball
/// must over-collect by at least half an f32 ulp (2⁻²⁵ relative). The
/// exact quantized predicate then filters the candidates, so padding
/// only costs a few extra settles, never changes the result.
const BALL_PAD: f64 = 1.0 + 1e-6;

/// Quantizes a distance through `f32` exactly like the oracle backends
/// store it, so graph-side Dijkstra and oracle reads agree bit-for-bit.
#[inline]
fn q32(d: f64) -> f64 {
    d as f32 as f64
}

/// Node count below which [`build_doubling`] dispatches to the frozen
/// oracle-scan reference builder instead of the bounded-ball builder —
/// when the oracle's rows are precomputed.
///
/// Measured on the dense matrix, hierarchy speedup is below 1 under
/// ~1024 nodes (0.32× at 256, 0.80× at 1024, 3.1× at 4096): on tiny
/// graphs the bounded-ball machinery's per-ball setup costs more than
/// the O(k²) oracle scans it avoids, and a dense oracle row read is a
/// plain array load. That last property is load-bearing: on on-demand
/// backends each row scan can trigger a Dijkstra solve, and the
/// reference builder loses at *every* size (the bench-baseline dispatch
/// gate caught it 16× slower at 256 nodes on the cached backend) — so
/// the dispatch also requires
/// [`rows_precomputed`](DistanceOracle::rows_precomputed). Both
/// strategies are bit-identical by construction (pinned by the
/// `hierarchy_parity` crossover test), so the dispatch is purely a
/// performance choice.
pub const ADAPTIVE_CROSSOVER_NODES: usize = 1024;

/// Builds the MIS-coarsened overlay for a (constant-doubling) network,
/// picking the construction strategy by size and backend: the
/// oracle-scan reference builder below [`ADAPTIVE_CROSSOVER_NODES`]
/// nodes on precomputed-row oracles, the bounded-ball builder
/// ([`build_doubling_balls`]) everywhere else. Both produce
/// bit-identical overlays; see the crossover constant for the
/// measurements behind the threshold.
///
/// `seed` drives Luby's random priorities; identical seeds yield identical
/// overlays.
pub fn build_doubling(
    g: &Graph,
    m: &dyn DistanceOracle,
    cfg: &OverlayConfig,
    seed: u64,
) -> Overlay {
    if g.node_count() < ADAPTIVE_CROSSOVER_NODES && m.rows_precomputed() {
        crate::reference::reference_build_doubling(g, m, cfg, seed)
    } else {
        build_doubling_balls(g, m, cfg, seed)
    }
}

/// The bounded-ball construction: radius-bounded Dijkstra over the CSR
/// graph instead of oracle distance scans (see the module docs). The
/// strategy of choice at scale — it never asks the oracle for a
/// distance, so it runs warm-up-free on on-demand backends — and what
/// [`build_doubling`] dispatches to past [`ADAPTIVE_CROSSOVER_NODES`].
pub fn build_doubling_balls(
    g: &Graph,
    m: &dyn DistanceOracle,
    cfg: &OverlayConfig,
    seed: u64,
) -> Overlay {
    assert_eq!(
        g.node_count(),
        m.node_count(),
        "graph and oracle disagree on n"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = g.node_count();
    let mut ws = DijkstraWorkspace::with_capacity(n);
    // Reused scratch: bounded_ball's result borrows the workspace, so
    // copy it out before querying distances from the same workspace.
    let mut ball: Vec<NodeId> = Vec::new();
    // Position of each node in the level currently marked (stamped so a
    // new level needs no O(n) clear).
    let mut mark: Vec<(u32, u32)> = vec![(0, u32::MAX); n];
    let mut mark_gen: u32 = 0;
    let mut mark_level = |mark: &mut Vec<(u32, u32)>, members: &[NodeId]| -> u32 {
        mark_gen += 1;
        for (i, &u) in members.iter().enumerate() {
            mark[u.index()] = (mark_gen, i as u32);
        }
        mark_gen
    };

    // --- level sets -----------------------------------------------------
    let mut levels: Vec<Vec<NodeId>> = vec![g.nodes().collect()];
    // Hard cap: radii double each level, so ⌈log2 D⌉ + 2 levels always
    // suffice; 64 guards against pathological float behaviour.
    for level in 1..=64usize {
        let prev = &levels[level - 1];
        if prev.len() == 1 {
            break;
        }
        let radius = (1u64 << level) as f64; // edges join nodes with dist < 2^ℓ at stage ℓ-1→ℓ
        let stamp = mark_level(&mut mark, prev);
        // Connectivity rows via bounded Dijkstra: `q32(d) < radius`
        // implies `d < radius`, so the unpadded inclusive ball is a
        // superset of every strict-predicate edge.
        let adjacency: Vec<Vec<usize>> = prev
            .iter()
            .map(|&u| {
                ball.clear();
                ball.extend_from_slice(ws.bounded_ball(g, u, radius));
                let mut row: Vec<usize> = ball
                    .iter()
                    .filter(|&&v| v != u)
                    .filter(|&&v| mark[v.index()].0 == stamp && q32(ws.dist(v)) < radius)
                    .map(|&v| mark[v.index()].1 as usize)
                    .collect();
                row.sort_unstable();
                row
            })
            .collect();
        let mis = luby_mis(prev, &adjacency, &mut rng);
        levels.push(mis);
    }
    // The loop above always terminates with a singleton: once
    // 2^ℓ > diameter the connectivity graph is complete.
    assert_eq!(
        levels.last().map(Vec::len),
        Some(1),
        "doubling construction did not converge to a root (n = {n}, D = {})",
        m.diameter()
    );
    let height = levels.len() - 1;

    // --- default parents (per level: member -> nearest next-level node) --
    // parent_of[l][u] = the level-(l+1) member nearest to the level-l
    // member u (ties by id), indexed by global node id.
    let mut parent_of: Vec<Vec<u32>> = Vec::with_capacity(height);
    for l in 0..height {
        let stamp = mark_level(&mut mark, &levels[l + 1]);
        let cover = (1u64 << (l + 1)) as f64;
        let mut parents = vec![u32::MAX; n];
        for &w in &levels[l] {
            // MIS maximality guarantees a next-level member with
            // quantized distance < 2^{l+1}; the padded ball therefore
            // contains the global (dist, id) minimum over the level.
            ball.clear();
            ball.extend_from_slice(ws.bounded_ball(g, w, cover * BALL_PAD));
            let p = ball
                .iter()
                .filter(|&&v| mark[v.index()].0 == stamp)
                .map(|&v| (q32(ws.dist(v)), v))
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)))
                .map(|(_, v)| v)
                .expect("non-empty upper level");
            debug_assert!(
                m.dist(w, p) < cover + 1e-6,
                "default parent must lie within 2^(l+1): dist({w},{p}) = {}",
                m.dist(w, p)
            );
            parents[w.index()] = p.0;
        }
        parent_of.push(parents);
    }

    // --- detection paths -------------------------------------------------
    // The level-l station of a node depends only on its level-(l-1) home,
    // so build each distinct (level, home) station once and share it down
    // every path that passes through that home.
    let mut station_of: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(height + 1);
    station_of.push(Vec::new()); // level 0 stations are the nodes themselves
    for l in 1..=height {
        let stamp = mark_level(&mut mark, &levels[l]);
        let radius = cfg.parent_set_radius_mult * (1u64 << l) as f64;
        let homes = &levels[l - 1];
        let mut per_home: Vec<Vec<NodeId>> = Vec::with_capacity(homes.len());
        for &home in homes {
            let dp = NodeId(parent_of[l - 1][home.index()]);
            ball.clear();
            ball.extend_from_slice(ws.bounded_ball(g, home, radius * BALL_PAD));
            let mut station: Vec<NodeId> = ball
                .iter()
                .copied()
                .filter(|&v| mark[v.index()].0 == stamp && q32(ws.dist(v)) <= radius)
                .collect();
            if !station.contains(&dp) {
                station.push(dp);
            }
            station.sort();
            per_home.push(station);
        }
        station_of.push(per_home);
    }
    let pos_in_level: Vec<std::collections::HashMap<u32, u32>> = levels
        .iter()
        .map(|members| {
            members
                .iter()
                .enumerate()
                .map(|(i, &u)| (u.0, i as u32))
                .collect()
        })
        .collect();
    let paths: Vec<DetectionPath> = g
        .nodes()
        .map(|u| {
            let mut stations = Vec::with_capacity(height + 1);
            stations.push(vec![u]);
            let mut home = u;
            for l in 1..=height {
                let hp = pos_in_level[l - 1][&home.0] as usize;
                stations.push(station_of[l][hp].clone());
                home = NodeId(parent_of[l - 1][home.index()]);
            }
            DetectionPath { stations }
        })
        .collect();

    Overlay::new(OverlayKind::Doubling, levels, paths, cfg.sp_gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::generators;
    use mot_net::DenseOracle;

    // Exercise the bounded-ball path directly: these grids sit below the
    // adaptive crossover, where `build_doubling` would dispatch to the
    // reference builder.
    fn build(rows: usize, cols: usize, cfg: OverlayConfig) -> (Overlay, DenseOracle) {
        let g = generators::grid(rows, cols).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let o = build_doubling_balls(&g, &m, &cfg, 7);
        (o, m)
    }

    #[test]
    fn single_node_graph_degenerates_gracefully() {
        let g = generators::line(1).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let o = build_doubling_balls(&g, &m, &OverlayConfig::practical(), 1);
        assert_eq!(o.height(), 0);
        assert_eq!(o.root(), NodeId(0));
        assert_eq!(o.station(NodeId(0), 0), &[NodeId(0)]);
    }

    #[test]
    fn level_counts_shrink_to_root() {
        let (o, m) = build(8, 8, OverlayConfig::practical());
        let h = o.height();
        assert_eq!(o.level_members(h).len(), 1);
        for l in 0..h {
            assert!(
                o.level_members(l).len() >= o.level_members(l + 1).len(),
                "level {l} smaller than level {}",
                l + 1
            );
        }
        // h <= ceil(log2 D) + 1
        let bound = (m.diameter().log2().ceil() as usize) + 1;
        assert!(h <= bound, "h = {h} > {bound}");
    }

    #[test]
    fn levels_are_nested_independent_sets() {
        let (o, m) = build(8, 8, OverlayConfig::practical());
        for l in 1..=o.height() {
            let cur = o.level_members(l);
            let prev: std::collections::HashSet<_> =
                o.level_members(l - 1).iter().copied().collect();
            for &v in cur {
                assert!(
                    prev.contains(&v),
                    "level {l} member {v} missing from level below"
                );
            }
            // pairwise separation >= 2^l
            let sep = (1u64 << l) as f64;
            for (i, &a) in cur.iter().enumerate() {
                for &b in &cur[i + 1..] {
                    assert!(
                        m.dist(a, b) >= sep,
                        "level {l}: dist({a},{b}) = {} < {sep}",
                        m.dist(a, b)
                    );
                }
            }
        }
    }

    #[test]
    fn every_node_covered_by_next_level() {
        let (o, m) = build(12, 12, OverlayConfig::practical());
        for l in 0..o.height() {
            let next = o.level_members(l + 1);
            let cover = (1u64 << (l + 1)) as f64;
            for &w in o.level_members(l) {
                let nearest = m.nearest_in(w, next).unwrap();
                assert!(
                    m.dist(w, nearest) < cover + 1e-6,
                    "level {l} node {w} uncovered at radius {cover}"
                );
            }
        }
    }

    #[test]
    fn stations_start_at_self_and_end_at_root() {
        let (o, _) = build(6, 6, OverlayConfig::practical());
        for u in 0..o.node_count() {
            let u = NodeId::from_index(u);
            assert_eq!(o.station(u, 0), &[u]);
            assert_eq!(o.station(u, o.height()), &[o.root()]);
            for l in 0..=o.height() {
                let s = o.station(u, l);
                assert!(!s.is_empty());
                assert!(s.windows(2).all(|w| w[0] < w[1]), "station not sorted");
            }
        }
    }

    #[test]
    fn singleton_profile_yields_single_parent_stations() {
        let (o, _) = build(8, 8, OverlayConfig::singleton_parents());
        for u in 0..o.node_count() {
            let u = NodeId::from_index(u);
            for l in 0..=o.height() {
                assert_eq!(o.station(u, l).len(), 1, "node {u} level {l}");
            }
        }
    }

    #[test]
    fn observation_1_station_size_bounded() {
        // Obs. 1: at most 2^{3ρ} parents; on a 2-D grid with the paper
        // radius multiplier the packing bound gives a modest constant.
        let (o, _) = build(16, 16, OverlayConfig::paper_exact());
        assert!(
            o.max_station_size() <= 64,
            "station size {} exceeds the 2-D packing bound",
            o.max_station_size()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::grid(8, 8).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let a = build_doubling_balls(&g, &m, &OverlayConfig::practical(), 3);
        let b = build_doubling_balls(&g, &m, &OverlayConfig::practical(), 3);
        for l in 0..=a.height() {
            assert_eq!(a.level_members(l), b.level_members(l));
        }
    }

    #[test]
    fn meet_lemma_2_1_with_paper_constants() {
        // Lemma 2.1: DPath(u), DPath(v) meet by level ⌈log dist(u,v)⌉ + 1.
        let (o, m) = build(8, 8, OverlayConfig::paper_exact());
        for u in 0..o.node_count() {
            for v in 0..o.node_count() {
                let (u, v) = (NodeId::from_index(u), NodeId::from_index(v));
                if u == v {
                    continue;
                }
                let d = m.dist(u, v);
                let bound = ((d.log2().ceil() as i64).max(0) as usize + 1).min(o.height());
                assert!(
                    o.meet_level(u, v) <= bound,
                    "meet({u},{v}) = {} > {bound} (d = {d})",
                    o.meet_level(u, v)
                );
            }
        }
    }

    #[test]
    fn path_length_grows_geometrically_lemma_2_2() {
        // Lemma 2.2: length(DPath_j(u)) ≤ c · 2^j for a topology-dependent
        // constant c. Verify the ratio length/2^j is bounded uniformly.
        let (o, m) = build(16, 16, OverlayConfig::practical());
        let mut worst: f64 = 0.0;
        for u in (0..o.node_count()).step_by(7) {
            let u = NodeId::from_index(u);
            for j in 1..=o.height() {
                let len = o.path_length(u, j, &m);
                worst = worst.max(len / (1u64 << j) as f64);
            }
        }
        assert!(worst <= 64.0, "path length ratio {worst} not geometric");
    }
}
