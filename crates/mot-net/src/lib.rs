//! Weighted sensor-network graph substrate for the MOT tracking suite.
//!
//! The paper models a sensor field as a static weighted graph
//! `G = (V, E, w)`: vertices are sensor nodes, an edge connects two sensors
//! when a mobile object can pass directly between their detection ranges,
//! and `w` gives the (normalized) distance between adjacent sensors. Every
//! communication cost in the tracking algorithms is a sum of shortest-path
//! distances in `G`, so this crate provides:
//!
//! * [`Graph`] — the weighted graph with optional geographic positions,
//! * generators for the topologies used in the evaluation
//!   ([`generators::grid`], [`generators::ring`], [`generators::torus`],
//!   [`generators::line`], [`generators::random_geometric`],
//!   [`generators::random_tree`]),
//! * single-source shortest paths ([`dijkstra()`]) and shortest-path
//!   trees, plus the reusable zero-allocation [`DijkstraWorkspace`]
//!   (`sssp` / `bounded_ball`) that hot callers thread through,
//! * the [`DistanceOracle`] trait with four backends — the dense
//!   all-pairs [`DenseOracle`] (built in parallel), the on-demand
//!   [`LazyOracle`], the bounded-solve byte-budgeted [`CachedOracle`],
//!   and the pinned-hot-set [`HybridOracle`] — selected via
//!   [`OracleKind`]; every hierarchy construction, ball query, and
//!   cost account goes through the trait,
//! * network [`metrics`]: diameter, doubling-dimension estimation,
//!   growth-restriction checks,
//! * §7 topology churn: generation-stamped node leave/join mutation on
//!   [`Graph`], [`TopologyDelta`] batches, and seeded
//!   connectivity-preserving [`ChurnSchedule`]s (see DESIGN.md §17).
//!
//! # Example
//!
//! ```
//! use mot_net::{generators, DenseOracle, DistanceOracle, NodeId, OracleKind};
//!
//! // The paper's largest evaluation topology: a 32x32 unit grid.
//! let g = generators::grid(32, 32)?;
//! assert_eq!(g.node_count(), 1024);
//!
//! // The oracle backs every cost account and radius query. Backends
//! // are interchangeable behind `&dyn DistanceOracle`.
//! let m = DenseOracle::build(&g)?;
//! assert_eq!(m.diameter(), 62.0);
//! assert_eq!(m.dist(NodeId(0), NodeId(1023)), 62.0);
//!
//! // k-neighborhoods (the paper's N(v, r)), sorted by distance:
//! let near = m.ball(NodeId(0), 2.0);
//! assert_eq!(near.len(), 6); // self + 2 at distance 1 + 3 at distance 2
//!
//! // Or let the factory pick: dense up to 4096 nodes, cached beyond.
//! let auto: Box<dyn DistanceOracle> = OracleKind::Auto.build(&g)?;
//! assert_eq!(auto.dist(NodeId(0), NodeId(1023)), 62.0);
//! # Ok::<(), mot_net::NetError>(())
//! ```
//!
//! # Place in the workspace
//!
//! The root of the crate DAG — depends on nothing, everything else
//! depends on it. Implements the system model of the paper's §2.1 and
//! serves every figure (all costs are oracle distances). See DESIGN.md
//! §3 (crate map) and §5 (distance-backend decisions).

#![warn(missing_docs)]

pub mod builder;
pub mod delta;
pub mod dijkstra;
pub mod error;
pub mod generators;
pub mod graph;
pub mod metrics;
pub mod node;
pub mod ops;
pub mod oracle;
pub mod workspace;

pub use builder::GraphBuilder;
pub use delta::{ChurnEvent, ChurnSchedule, ChurnSpec, TopologyDelta};
pub use dijkstra::{dijkstra, dijkstra_targeted, shortest_path_tree, PathTree};
pub use error::NetError;
pub use graph::{Edge, Graph};
pub use metrics::{estimate_doubling_dimension, growth_ratio, GraphStats};
pub use node::{NodeId, Point};
pub use ops::{k_nearest, path_between, subgraph};
pub use oracle::{
    CacheLedger, CachedOracle, DeltaInvalidation, DenseOracle, DistanceOracle, HybridOracle,
    LazyOracle, OracleKind,
};
pub use workspace::DijkstraWorkspace;

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;
