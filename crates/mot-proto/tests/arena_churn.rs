//! Reuse-churn parity: recycled route buffers must never leak state.
//!
//! The same fixed workload runs twice through the message-passing
//! runtime — once with the route-buffer arena enabled (the default),
//! once with reuse disabled so every buffer is a fresh allocation —
//! and the two runs must agree to the last bit: identical per-op
//! costs, identical proxies, identical detection-list state and
//! per-node loads. Any value surviving a recycle (a stale member in a
//! reused down-list, an uncleared delete walk) shows up as a cost or
//! state divergence here.

use mot_core::{MotConfig, ObjectId, Tracker};
use mot_hierarchy::{build_doubling, OverlayConfig};
use mot_net::{generators, DenseOracle, NodeId};
use mot_proto::ProtoTracker;
use rand::{Rng, SeedableRng};

/// Drives one tracker through a fixed publish/move/query churn and
/// returns every observable bit: op costs, reply answers, final loads.
fn churn(t: &mut ProtoTracker, rows: usize, cols: usize) -> (Vec<f64>, Vec<NodeId>, Vec<usize>) {
    let n = (rows * cols) as u32;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xC0FFEE);
    let mut costs = Vec::new();
    let mut answers = Vec::new();
    for k in 0..12u32 {
        costs.push(t.publish(ObjectId(k), NodeId(k * 7 % n)).unwrap());
    }
    for _ in 0..200 {
        let o = ObjectId(rng.gen_range(0..12u32));
        match rng.gen_range(0..3u32) {
            0 | 1 => {
                let to = NodeId(rng.gen_range(0..n));
                if Some(to) != t.proxy_of(o) {
                    costs.push(t.move_object(o, to).unwrap().cost);
                }
            }
            _ => {
                let from = NodeId(rng.gen_range(0..n));
                let r = t.query(from, o).unwrap();
                costs.push(r.cost);
                answers.push(r.proxy);
            }
        }
    }
    (costs, answers, t.node_loads())
}

#[test]
fn recycled_buffers_are_bit_identical_to_fresh_allocation() {
    let (rows, cols) = (8, 8);
    let g = generators::grid(rows, cols).unwrap();
    let m = DenseOracle::build(&g).unwrap();
    let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
    let cfg = MotConfig::plain();

    let mut reused = ProtoTracker::new(&overlay, &m, &cfg);
    let mut fresh = ProtoTracker::new(&overlay, &m, &cfg);
    fresh.set_buffer_reuse(false);

    let (costs_r, answers_r, loads_r) = churn(&mut reused, rows, cols);
    let (costs_f, answers_f, loads_f) = churn(&mut fresh, rows, cols);

    assert_eq!(
        costs_r.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        costs_f.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
        "op costs diverged between reused and fresh buffers"
    );
    assert_eq!(answers_r, answers_f, "query answers diverged");
    assert_eq!(loads_r, loads_f, "node loads diverged");
    for node in g.nodes() {
        for level in 0..=overlay.height() {
            for k in 0..12u32 {
                assert_eq!(
                    reused.holds(node, level, ObjectId(k)),
                    fresh.holds(node, level, ObjectId(k)),
                    "DL state diverged at {node} level {level} object {k}"
                );
            }
        }
    }

    // The churn actually exercised the freelist (not vacuously green).
    let stats = reused.arena_stats();
    assert!(
        stats.reused > 100,
        "expected heavy freelist traffic, saw {stats:?}"
    );
    assert_eq!(
        fresh.arena_stats().reused,
        0,
        "disabled arena must never reuse"
    );
}

#[test]
fn arena_reuse_reaches_steady_state() {
    // After warm-up, a move/query workload should serve nearly every
    // route buffer from the freelist: takes grow with ops, fresh
    // allocations (taken - reused) stay at the warm-up watermark.
    let g = generators::grid(8, 8).unwrap();
    let m = DenseOracle::build(&g).unwrap();
    let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 3);
    let mut t = ProtoTracker::new(&overlay, &m, &MotConfig::plain());
    let o = ObjectId(0);
    t.publish(o, NodeId(0)).unwrap();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
    for _ in 0..50 {
        t.move_object(o, NodeId(rng.gen_range(0..64u32))).unwrap();
        t.query(NodeId(rng.gen_range(0..64u32)), o).unwrap();
    }
    let warm = t.arena_stats();
    let warm_fresh = warm.taken - warm.reused;
    for _ in 0..200 {
        t.move_object(o, NodeId(rng.gen_range(0..64u32))).unwrap();
        t.query(NodeId(rng.gen_range(0..64u32)), o).unwrap();
    }
    let end = t.arena_stats();
    let end_fresh = end.taken - end.reused;
    assert!(
        end_fresh <= warm_fresh + 8,
        "steady state still allocates: {warm_fresh} fresh after warm-up, \
         {end_fresh} after 4x more ops"
    );
    assert!(end.taken > warm.taken + 400, "workload too small to judge");
}
