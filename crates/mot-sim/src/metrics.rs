//! Cost and load statistics.

/// Accumulated algorithm-vs-optimal communication cost.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostStats {
    /// Total message distance spent by the algorithm.
    pub total: f64,
    /// Total optimal cost (sum of `dist(u_i, v_i)` for maintenance; sum
    /// of `dist(querier, proxy)` for queries).
    pub optimal: f64,
    /// Sum of per-operation ratios (for operations with positive optimal
    /// cost).
    pub ratio_sum: f64,
    /// Number of operations accumulated.
    pub operations: usize,
}

impl CostStats {
    /// Folds one operation in.
    pub fn record(&mut self, cost: f64, optimal: f64) {
        self.total += cost;
        self.optimal += optimal;
        if optimal > 0.0 {
            self.ratio_sum += cost / optimal;
        } else {
            // free operation served free: ratio 1 by convention
            self.ratio_sum += 1.0;
        }
        self.operations += 1;
    }

    /// The amortized cost ratio `C(E) / C*(E)` — the metric of the
    /// maintenance analysis (a *sequence* of operations is charged
    /// against the optimal for the whole sequence). 1.0 when no optimal
    /// cost has accrued.
    pub fn ratio(&self) -> f64 {
        if self.optimal <= 0.0 {
            1.0
        } else {
            self.total / self.optimal
        }
    }

    /// Mean of per-operation ratios — the metric of the query analysis
    /// (each query is charged against its own optimal, Theorem 4.11).
    pub fn mean_ratio(&self) -> f64 {
        if self.operations == 0 {
            1.0
        } else {
            self.ratio_sum / self.operations as f64
        }
    }

    /// Merges another accumulator (e.g. across seeds).
    pub fn merge(&mut self, other: &CostStats) {
        self.total += other.total;
        self.optimal += other.optimal;
        self.ratio_sum += other.ratio_sum;
        self.operations += other.operations;
    }
}

/// Mean and (sample) standard deviation of a series of repeated
/// measurements — used when reporting across seeds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub stddev: f64,
    pub count: usize,
}

impl Summary {
    /// Summarizes a slice of samples.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        Summary {
            mean,
            stddev: var.sqrt(),
            count: n,
        }
    }
}

/// Snapshot statistics over per-node loads (Figs. 8–11).
#[derive(Clone, Debug, PartialEq)]
pub struct LoadStats {
    pub max: usize,
    pub mean: f64,
    /// Number of nodes with load strictly greater than 10 — the
    /// threshold the paper's load figures call out.
    pub nodes_above_10: usize,
    /// Jain's fairness index in `(0, 1]`; 1 = perfectly even.
    pub jain_index: f64,
    /// Histogram over fixed bins: `[0, 1, 2, 3-5, 6-10, >10]`.
    pub histogram: [usize; 6],
}

impl LoadStats {
    /// Computes statistics from a per-node load vector.
    pub fn from_loads(loads: &[usize]) -> LoadStats {
        let n = loads.len().max(1);
        let sum: usize = loads.iter().sum();
        let sum_sq: f64 = loads.iter().map(|&l| (l * l) as f64).sum();
        let jain = if sum == 0 {
            1.0
        } else {
            (sum as f64 * sum as f64) / (n as f64 * sum_sq)
        };
        let mut histogram = [0usize; 6];
        for &l in loads {
            let bin = match l {
                0 => 0,
                1 => 1,
                2 => 2,
                3..=5 => 3,
                6..=10 => 4,
                _ => 5,
            };
            histogram[bin] += 1;
        }
        LoadStats {
            max: loads.iter().copied().max().unwrap_or(0),
            mean: sum as f64 / n as f64,
            nodes_above_10: loads.iter().filter(|&&l| l > 10).count(),
            jain_index: jain,
            histogram,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_accumulates() {
        let mut c = CostStats::default();
        c.record(10.0, 2.0);
        c.record(6.0, 2.0);
        assert_eq!(c.operations, 2);
        assert!((c.ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(CostStats::default().ratio(), 1.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = CostStats::default();
        a.record(4.0, 1.0);
        let mut b = CostStats::default();
        b.record(2.0, 1.0);
        a.merge(&b);
        assert_eq!(a.total, 6.0);
        assert_eq!(a.operations, 2);
        assert!((a.ratio() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_mean_and_stddev() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.count, 8);
        assert_eq!(Summary::of(&[]).count, 0);
        assert_eq!(Summary::of(&[3.0]).stddev, 0.0);
    }

    #[test]
    fn load_stats_basic() {
        let s = LoadStats::from_loads(&[0, 1, 1, 2, 15]);
        assert_eq!(s.max, 15);
        assert_eq!(s.nodes_above_10, 1);
        assert!((s.mean - 3.8).abs() < 1e-12);
        assert_eq!(s.histogram, [1, 2, 1, 0, 0, 1]);
    }

    #[test]
    fn jain_index_detects_imbalance() {
        let even = LoadStats::from_loads(&[5, 5, 5, 5]);
        assert!((even.jain_index - 1.0).abs() < 1e-12);
        let skewed = LoadStats::from_loads(&[20, 0, 0, 0]);
        assert!((skewed.jain_index - 0.25).abs() < 1e-12);
        let empty = LoadStats::from_loads(&[0, 0]);
        assert_eq!(empty.jain_index, 1.0);
    }
}
