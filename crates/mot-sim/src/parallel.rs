//! Deterministic fan-out over independent experiment cells.
//!
//! The paper's evaluation is a sweep over *(figure × grid size ×
//! algorithm × seed)* cells, and every cell is self-contained: it builds
//! its own test bed, generates its own workload from explicit seeds, and
//! returns plain mergeable statistics ([`crate::CostStats`],
//! [`crate::LevelLedger`], [`crate::Histogram`]). That independence is
//! what makes the sweep parallelizable *without* giving up bit-exact
//! reproducibility — provided two rules hold, which this module
//! enforces structurally:
//!
//! 1. **Cell-keyed randomness.** Every random stream a cell consumes is
//!    derived from the cell's stable [`CellKey`] (directly via
//!    [`CellKey::rng`]'s ChaCha stream splitting, or via explicit
//!    per-cell seed arithmetic) — never from worker identity, execution
//!    order, or wall clock.
//! 2. **Canonical merge order.** [`ParallelRunner::run`] returns results
//!    indexed by submission order, whatever order workers finish in, so
//!    callers always fold cells in the same sequence and floating-point
//!    accumulation is bit-identical for 1 worker and N workers.
//!
//! A panic inside a cell does not poison the pool: the worker catches
//! it, records [`SimError::Cell`] with the cell's key, and moves on to
//! the next cell. See `DESIGN.md` §12 for the full determinism contract.
//!
//! # Example
//!
//! ```
//! use mot_sim::parallel::{CellKey, Keyed, ParallelRunner};
//! use mot_sim::SimError;
//! use rand::Rng;
//!
//! // Four independent cells, each with a key-derived RNG stream.
//! let cells: Vec<Keyed<u64>> = (0..4)
//!     .map(|seed| Keyed::new(CellKey::new("demo", 64, "MOT", seed), seed))
//!     .collect();
//! let run = |cell: &Keyed<u64>| -> Result<u64, SimError> {
//!     let mut rng = cell.key.rng();
//!     Ok(rng.gen_range(0..1_000_000))
//! };
//! let serial = ParallelRunner::new(1).run(&cells, run)?;
//! let fanned = ParallelRunner::new(4).run(&cells, run)?;
//! assert_eq!(serial, fanned); // bit-identical regardless of workers
//! # Ok::<(), SimError>(())
//! ```

use crate::error::SimError;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Stable identity of one experiment cell: the *(figure, size, algo,
/// seed)* coordinates of the evaluation sweep. Keys are pure data — two
/// runs of the same sweep produce the same keys in the same canonical
/// order — and double as the root of the cell's random streams.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Figure family (e.g. `"fig4"`, `"faults"`). Free-form; families
    /// with extra coordinates fold them in (e.g. `"general/ring-100"`).
    pub figure: String,
    /// Network size (node count) the cell runs on.
    pub size: usize,
    /// Algorithm / variant label (e.g. `"MOT"`, `"STUN"`).
    pub algo: String,
    /// Repetition seed within the cell's figure row.
    pub seed: u64,
}

impl CellKey {
    /// Builds a key from the four sweep coordinates.
    pub fn new(
        figure: impl Into<String>,
        size: usize,
        algo: impl Into<String>,
        seed: u64,
    ) -> CellKey {
        CellKey {
            figure: figure.into(),
            size,
            algo: algo.into(),
            seed,
        }
    }

    /// A stable 64-bit digest of the non-seed coordinates (FNV-1a over
    /// `figure`, `size`, and `algo`) — the ChaCha *stream id* under
    /// which [`CellKey::rng`] splits this cell off from every other
    /// cell sharing its seed.
    pub fn stream_id(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.figure.as_bytes());
        eat(&[0xff]); // field separator: "ab"+"c" != "a"+"bc"
        eat(&(self.size as u64).to_le_bytes());
        eat(self.algo.as_bytes());
        eat(&[0xff]);
        h
    }

    /// The cell's root random stream: a `ChaCha8Rng` seeded with the
    /// cell's `seed` and switched to the stream [`CellKey::stream_id`]
    /// names. Cells that share a repetition seed but differ in figure,
    /// size, or algorithm draw from non-overlapping keystreams, and the
    /// stream never depends on which worker runs the cell or when.
    pub fn rng(&self) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        rng.set_stream(self.stream_id());
        rng
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/n{}/{}/seed{}",
            self.figure, self.size, self.algo, self.seed
        )
    }
}

/// A [`CellKey`] paired with whatever payload the cell function needs
/// (grid dimensions, algorithm enums, topology handles). The runner
/// reads only the key — the payload is the caller's.
#[derive(Clone, Debug)]
pub struct Keyed<C> {
    /// The cell's stable identity.
    pub key: CellKey,
    /// Caller-side payload handed back to the cell function.
    pub data: C,
}

impl<C> Keyed<C> {
    /// Pairs a key with its payload.
    pub fn new(key: CellKey, data: C) -> Keyed<C> {
        Keyed { key, data }
    }
}

/// A `std::thread::scope` worker pool that executes independent cells
/// and returns their results in canonical (submission) order.
///
/// The pool is a plain work-stealing counter over the cell slice: each
/// worker claims the next unclaimed index, runs the cell function, and
/// writes the result into that index's slot. Because slots are indexed
/// by submission order, the returned `Vec` — and therefore every
/// downstream merge — is identical for `jobs = 1` and `jobs = N`.
///
/// Failure semantics: a cell that returns `Err` or panics never stops
/// the other cells; every cell always executes. After the pool drains,
/// the first failure in canonical order is returned (panics wrapped as
/// [`SimError::Cell`]), making the surfaced error independent of thread
/// scheduling too.
#[derive(Clone, Copy, Debug)]
pub struct ParallelRunner {
    jobs: usize,
}

impl ParallelRunner {
    /// A runner with `jobs` workers; `0` means one worker per available
    /// hardware thread ([`std::thread::available_parallelism`]).
    pub fn new(jobs: usize) -> ParallelRunner {
        let jobs = if jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            jobs
        };
        ParallelRunner { jobs }
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Executes `f` once per cell and returns the results in the cells'
    /// canonical order, or the canonically-first failure.
    ///
    /// `f` must treat each cell as self-contained: any randomness it
    /// consumes has to derive from the cell's key (or explicit per-cell
    /// seeds carried in the payload), never from shared mutable state.
    pub fn run<C, T, E, F>(&self, cells: &[Keyed<C>], f: F) -> Result<Vec<T>, E>
    where
        C: Sync,
        T: Send,
        E: Send + From<SimError>,
        F: Fn(&Keyed<C>) -> Result<T, E> + Sync,
    {
        let n = cells.len();
        let run_one = |cell: &Keyed<C>| -> Result<T, E> {
            catch_unwind(AssertUnwindSafe(|| f(cell))).unwrap_or_else(|payload| {
                Err(E::from(SimError::Cell {
                    key: cell.key.clone(),
                    cause: panic_message(payload),
                }))
            })
        };

        let mut slots: Vec<Option<Result<T, E>>>;
        if self.jobs <= 1 || n <= 1 {
            // Inline path: same per-cell wrapper, same slot layout, no
            // threads — the jobs=1 reference the parity tests compare
            // the fan-out against.
            slots = cells.iter().map(|cell| Some(run_one(cell))).collect();
        } else {
            let filled: Vec<Mutex<Option<Result<T, E>>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..self.jobs.min(n) {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = run_one(&cells[i]);
                        *filled[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    });
                }
            });
            slots = filled
                .into_iter()
                .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
                .collect();
        }

        let mut out = Vec::with_capacity(n);
        let mut first_err: Option<E> = None;
        for slot in slots.drain(..) {
            match slot.expect("every cell slot is filled") {
                Ok(v) => out.push(v),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

/// Renders a caught panic payload as text (panics usually carry a
/// `String` or `&str`; anything else gets a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::sync::atomic::AtomicUsize;

    fn cells(n: u64) -> Vec<Keyed<u64>> {
        (0..n)
            .map(|seed| Keyed::new(CellKey::new("test", 64, "MOT", seed), seed))
            .collect()
    }

    #[test]
    fn results_are_bit_identical_across_worker_counts() {
        let cells = cells(17);
        let work = |cell: &Keyed<u64>| -> Result<(u64, f64), SimError> {
            let mut rng = cell.key.rng();
            // float accumulation: merge-order sensitive if ordering broke
            let mut acc = 0.0f64;
            for _ in 0..100 {
                acc += rng.gen::<f64>() / 3.0;
            }
            Ok((cell.data, acc))
        };
        let one = ParallelRunner::new(1).run(&cells, work).unwrap();
        for jobs in [2, 4, 8] {
            let many = ParallelRunner::new(jobs).run(&cells, work).unwrap();
            assert_eq!(one, many, "jobs={jobs} diverged from jobs=1");
        }
        // canonical order: slot i belongs to cell i
        for (i, (seed, _)) in one.iter().enumerate() {
            assert_eq!(*seed, i as u64);
        }
    }

    #[test]
    fn worker_panic_surfaces_cell_error_and_other_cells_complete() {
        let cells = cells(9);
        let completed = AtomicUsize::new(0);
        let err: SimError = ParallelRunner::new(4)
            .run(&cells, |cell: &Keyed<u64>| -> Result<u64, SimError> {
                if cell.data == 5 {
                    panic!("poisoned cell {}", cell.data);
                }
                completed.fetch_add(1, Ordering::Relaxed);
                Ok(cell.data)
            })
            .unwrap_err();
        match &err {
            SimError::Cell { key, cause } => {
                assert_eq!(key.seed, 5);
                assert_eq!(key.figure, "test");
                assert!(cause.contains("poisoned cell 5"), "{cause}");
            }
            other => panic!("expected SimError::Cell, got {other:?}"),
        }
        assert_eq!(
            completed.load(Ordering::Relaxed),
            8,
            "the panic must not stop the remaining cells"
        );
        assert!(err.to_string().contains("test/n64/MOT/seed5"), "{err}");
    }

    #[test]
    fn first_error_in_canonical_order_wins_regardless_of_jobs() {
        let cells = cells(12);
        let work = |cell: &Keyed<u64>| -> Result<u64, SimError> {
            if cell.data == 3 || cell.data == 10 {
                panic!("bad cell");
            }
            Ok(cell.data)
        };
        for jobs in [1, 2, 6] {
            let err = ParallelRunner::new(jobs).run(&cells, work).unwrap_err();
            match err {
                SimError::Cell { key, .. } => {
                    assert_eq!(key.seed, 3, "jobs={jobs} surfaced the wrong cell")
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn stream_ids_separate_cells_sharing_a_seed() {
        let a = CellKey::new("fig4", 1024, "MOT", 2);
        let b = CellKey::new("fig4", 1024, "STUN", 2);
        let c = CellKey::new("fig5", 1024, "MOT", 2);
        assert_ne!(a.stream_id(), b.stream_id());
        assert_ne!(a.stream_id(), c.stream_id());
        let mut ra = a.rng();
        let mut rb = b.rng();
        let xa: Vec<u64> = (0..16).map(|_| ra.gen()).collect();
        let xb: Vec<u64> = (0..16).map(|_| rb.gen()).collect();
        assert_ne!(xa, xb, "same seed, different cell: streams must split");
        // and the stream is replayable
        let xa2: Vec<u64> = {
            let mut r = a.rng();
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(xa, xa2);
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let r = ParallelRunner::new(0);
        assert!(r.jobs() >= 1);
        let explicit = ParallelRunner::new(3);
        assert_eq!(explicit.jobs(), 3);
    }
}
