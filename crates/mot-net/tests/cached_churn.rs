//! Cache behavior under churn: the `CachedOracle` must stay exact and
//! *accountable* while rows are promoted, evicted, and recomputed.
//!
//! Three properties are pinned here, on top of the value-level parity
//! the `oracle_differential` suite already proves:
//!
//! 1. **Eviction determinism** — the ledger (hits / misses / evictions
//!    / promotions) is a pure function of the query stream and the byte
//!    budget, so identical runs produce identical ledgers.
//! 2. **Interleaved reuse** — pooled Dijkstra workspaces carry no state
//!    between solves: interleaving oracles, query types, and threads
//!    never changes a distance.
//! 3. **Bounded memory at scale** — at 100k nodes the resident-row
//!    footprint respects the configured byte budget even under heavy
//!    promotion churn (the property `LazyOracle`'s row-count cap could
//!    not give: its worst case still grows with n²).

use mot_net::{generators, CachedOracle, DenseOracle, DistanceOracle, NodeId};

/// Bytes of one resident row on an n-node graph (f32 per node + a
/// sorted (f32, u32) view), mirroring `DistRow::bytes`.
fn row_bytes(n: usize) -> usize {
    12 * n
}

/// A deterministic mixed dist/ball query stream over an n-node graph.
/// Arithmetic (not RNG) so the stream is reproducible by inspection.
fn churn_stream(oracle: &CachedOracle, n: usize) -> f64 {
    let mut acc = 0.0;
    for i in 0..600usize {
        let u = NodeId::from_index((i * 37) % n);
        let v = NodeId::from_index((i * 91 + 13) % n);
        acc += oracle.dist(u, v);
        if i % 5 == 0 {
            acc += oracle.ball(u, (i % 7) as f64).len() as f64;
        }
    }
    acc
}

#[test]
fn eviction_ledger_is_deterministic_for_a_fixed_stream_and_budget() {
    let g = generators::grid(12, 12).unwrap();
    let budget = 3 * row_bytes(144);
    let run = || {
        let oracle = CachedOracle::with_byte_budget(&g, budget).unwrap();
        let acc = churn_stream(&oracle, 144);
        (acc, oracle.ledger())
    };
    let (acc_a, ledger_a) = run();
    let (acc_b, ledger_b) = run();
    assert_eq!(acc_a, acc_b, "query values must be deterministic");
    assert_eq!(ledger_a, ledger_b, "ledger must be deterministic");
    // The stream is hot enough to exercise every cache transition.
    assert!(ledger_a.hits > 0, "{ledger_a:?}");
    assert!(ledger_a.misses > 0, "{ledger_a:?}");
    assert!(ledger_a.promotions > 3, "{ledger_a:?}");
    assert!(ledger_a.evictions > 0, "{ledger_a:?}");
    assert!(ledger_a.resident_bytes <= budget, "{ledger_a:?}");
}

#[test]
fn a_larger_budget_trades_evictions_for_hits_on_the_same_stream() {
    let g = generators::grid(12, 12).unwrap();
    let tight = CachedOracle::with_byte_budget(&g, 2 * row_bytes(144)).unwrap();
    let roomy = CachedOracle::with_byte_budget(&g, 64 * row_bytes(144)).unwrap();
    let acc_tight = churn_stream(&tight, 144);
    let acc_roomy = churn_stream(&roomy, 144);
    assert_eq!(acc_tight, acc_roomy, "budget must never change values");
    let (lt, lr) = (tight.ledger(), roomy.ledger());
    assert!(lt.evictions > lr.evictions, "{lt:?} vs {lr:?}");
    assert!(lt.hits < lr.hits, "{lt:?} vs {lr:?}");
}

#[test]
fn interleaved_oracles_and_query_types_match_dense() {
    // Two oracles over different graphs, queried in lockstep: pooled
    // workspaces inside each oracle are reused across interleaved
    // dist/ball solves and must never leak state between runs.
    let ga = generators::grid(9, 8).unwrap();
    let gb = generators::random_geometric(70, 9.0, 2.5, 23).unwrap();
    let da = DenseOracle::build(&ga).unwrap();
    let db = DenseOracle::build(&gb).unwrap();
    let ca = CachedOracle::with_byte_budget(&ga, 2 * row_bytes(72)).unwrap();
    let cb = CachedOracle::with_byte_budget(&gb, 2 * row_bytes(70)).unwrap();
    for i in 0..400usize {
        let (ua, va) = (
            NodeId::from_index((i * 31) % 72),
            NodeId::from_index((i * 17 + 5) % 72),
        );
        let (ub, vb) = (
            NodeId::from_index((i * 29) % 70),
            NodeId::from_index((i * 13 + 3) % 70),
        );
        assert_eq!(ca.dist(ua, va), da.dist(ua, va), "step {i}");
        assert_eq!(cb.dist(ub, vb), db.dist(ub, vb), "step {i}");
        if i % 3 == 0 {
            let r = (i % 9) as f64 / 2.0;
            assert_eq!(ca.ball(ua, r), da.ball(ua, r), "step {i}");
            assert_eq!(cb.ball(ub, r), db.ball(ub, r), "step {i}");
        }
    }
    assert!(ca.ledger().evictions > 0);
    assert!(cb.ledger().evictions > 0);
}

#[test]
fn concurrent_churn_on_a_tiny_budget_matches_dense() {
    // Four threads hammer one two-row oracle: rows race in and out of
    // the cache while pooled workspaces are handed between threads.
    let g = generators::grid(10, 10).unwrap();
    let dense = DenseOracle::build(&g).unwrap();
    let cached = CachedOracle::with_byte_budget(&g, 2 * row_bytes(100)).unwrap();
    std::thread::scope(|s| {
        for t in 0..4usize {
            let (cached, dense) = (&cached, &dense);
            s.spawn(move || {
                for i in 0..300usize {
                    let u = NodeId::from_index((i * 37 + t * 25) % 100);
                    let v = NodeId::from_index((i * 91 + 13) % 100);
                    assert_eq!(cached.dist(u, v), dense.dist(u, v));
                }
            });
        }
    });
    let ledger = cached.ledger();
    assert!(ledger.resident_bytes <= 2 * row_bytes(100), "{ledger:?}");
}

#[test]
fn memory_bytes_respects_the_budget_at_100k_nodes() {
    // 250×400 grid = 100_000 nodes; budget admits exactly 4 rows.
    let g = generators::grid(250, 400).unwrap();
    let n = g.node_count();
    assert_eq!(n, 100_000);
    let budget = 4 * row_bytes(n);
    let oracle = CachedOracle::with_byte_budget(&g, budget).unwrap();
    // Ten sources each run a diameter-radius ball (settles all n nodes,
    // crossing the promotion threshold) and then a dist, whose miss
    // promotes a full row. Ten promotions against a four-row budget
    // forces six evictions.
    let far = NodeId::from_index(n - 1);
    for i in 0..10usize {
        let u = NodeId::from_index(i * 11_111);
        oracle.ball(u, 650.0);
        oracle.dist(u, far);
        assert!(
            oracle.memory_bytes() <= budget,
            "footprint above budget after source {i}: {} > {budget}",
            oracle.memory_bytes()
        );
    }
    let ledger = oracle.ledger();
    assert_eq!(ledger.promotions, 10, "{ledger:?}");
    assert_eq!(ledger.evictions, 6, "{ledger:?}");
    assert_eq!(ledger.resident_rows, 4, "{ledger:?}");
    assert_eq!(ledger.resident_bytes, oracle.memory_bytes());
    // Evicted rows recompute exactly: corner-to-corner Manhattan dist.
    assert_eq!(oracle.dist(NodeId(0), far), 249.0 + 399.0);
}
