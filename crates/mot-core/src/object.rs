//! Mobile object identifiers.

use std::fmt;

/// Identifier of a mobile object (the paper's `o_i`, with objects
/// distinguishable by ID).
///
/// The load-balanced variant hashes objects into cluster slots by
/// `key(o) mod |X|` (§5); [`ObjectId::key`] is that key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The hash key used for cluster placement (`key(o_i) ∈ [1..m]` in
    /// the paper; dense ids make the modular placement perfectly uniform).
    #[inline]
    pub fn key(self) -> u32 {
        self.0
    }

    /// Dense index for vector-backed storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_and_index_roundtrip() {
        let o = ObjectId(17);
        assert_eq!(o.key(), 17);
        assert_eq!(o.index(), 17);
        assert_eq!(format!("{o:?}"), "o17");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(ObjectId(2) < ObjectId(10));
    }
}
