//! Bench for the Theorem 4.1 table: publish cost is O(D) per object.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mot_bench::{publish_cost_table, Profile};
use mot_core::{MotConfig, MotTracker, ObjectId, Tracker};
use mot_net::NodeId;
use mot_sim::TestBed;

fn bench(c: &mut Criterion) {
    eprintln!(
        "{}",
        publish_cost_table(&Profile::quick(50))
            .expect("figure")
            .render()
    );

    let mut group = c.benchmark_group("publish_per_object");
    for (r, cols) in [(8usize, 8usize), (16, 16), (23, 23)] {
        let bed = TestBed::grid(r, cols, 1).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(r * cols), &bed, |b, bed| {
            let mut k = 0u32;
            b.iter(|| {
                // fresh tracker per batch of publishes to keep state bounded
                let mut t = MotTracker::new(&bed.overlay, &bed.oracle, MotConfig::plain());
                for i in 0..16u32 {
                    let proxy = NodeId(
                        (k.wrapping_mul(31).wrapping_add(i * 7)) % bed.graph.node_count() as u32,
                    );
                    t.publish(ObjectId(i), proxy).unwrap();
                }
                k = k.wrapping_add(1);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
