//! Plain-text / CSV / JSON rendering of experiment tables, plus the
//! machine-readable [`RunReport`] behind `experiments --metrics`.

use mot_core::fmt_f64;
use mot_net::CacheLedger;
use mot_sim::TraceAggregates;

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// table titles and ids are plain ASCII, but stay correct regardless.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One regenerated figure: a labelled series per algorithm over an x axis
/// (network size, usually).
#[derive(Clone, Debug)]
pub struct FigureTable {
    /// Rendered table heading (figure name and workload summary).
    pub title: String,
    /// x-axis label (e.g. "nodes").
    pub x_label: String,
    /// Series names (e.g. algorithm labels).
    pub columns: Vec<String>,
    /// Rows: x value + one y value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl FigureTable {
    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows
                .iter()
                .map(|(x, _)| x.len())
                .chain([self.x_label.len()])
                .max()
                .unwrap_or(4),
        );
        for (i, c) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, ys)| format!("{:.3}", ys[i]).len())
                .chain([c.len()])
                .max()
                .unwrap_or(6);
            widths.push(w);
        }
        out.push_str(&format!("{:>w$}", self.x_label, w = widths[0]));
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", c, w = widths[i + 1]));
        }
        out.push('\n');
        for (x, ys) in &self.rows {
            out.push_str(&format!("{:>w$}", x, w = widths[0]));
            for (i, y) in ys.iter().enumerate() {
                out.push_str(&format!("  {:>w$.3}", y, w = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (x, ys) in &self.rows {
            out.push_str(x);
            for y in ys {
                out.push_str(&format!(",{y:.6}"));
            }
            out.push('\n');
        }
        out
    }

    /// The series values of a named column (testing aid).
    pub fn column(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.columns.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|(_, ys)| ys[idx]).collect())
    }

    /// JSON rendering:
    /// `{"title":…,"x_label":…,"columns":[…],"rows":[{"x":…,"ys":[…]}]}`.
    pub fn to_json(&self) -> String {
        let columns: Vec<String> = self.columns.iter().map(|c| json_string(c)).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|(x, ys)| {
                let vals: Vec<String> = ys.iter().map(|&y| fmt_f64(y)).collect();
                format!("{{\"x\":{},\"ys\":[{}]}}", json_string(x), vals.join(","))
            })
            .collect();
        format!(
            "{{\"title\":{},\"x_label\":{},\"columns\":[{}],\"rows\":[{}]}}",
            json_string(&self.title),
            json_string(&self.x_label),
            columns.join(","),
            rows.join(",")
        )
    }
}

/// The machine-readable report `experiments --metrics out.json` writes:
/// every table the run produced (keyed by experiment id), per-experiment
/// wall-clock seconds, and the aggregates of the fixed-seed instrumented
/// MOT run (per-level ledgers and hop/cost histograms).
#[derive(Default)]
pub struct RunReport {
    /// Profile name the run used (`quick`/`standard`/`paper`).
    pub profile: String,
    /// Distance-backend label.
    pub oracle: String,
    /// `(experiment id, table)` in execution order.
    pub tables: Vec<(String, FigureTable)>,
    /// `(experiment id, wall-clock seconds)` in execution order.
    pub timings_secs: Vec<(String, f64)>,
    /// Aggregates of the fixed-seed instrumented run, when collected.
    pub trace: Option<TraceAggregates>,
    /// Distance-oracle cache counters of the instrumented run, when its
    /// backend keeps them (`cached`) — long soaks watch hit/miss/eviction
    /// rates here for cache health over time.
    pub cache: Option<CacheLedger>,
    /// Full service-mode report JSON (counters, histograms, and the
    /// wall-clock throughput trailer), when a `service*` experiment ran.
    pub service: Option<String>,
}

impl RunReport {
    /// The whole report as one JSON object (tables keyed by experiment
    /// id, timings, and the optional trace aggregates).
    pub fn to_json(&self) -> String {
        let tables: Vec<String> = self
            .tables
            .iter()
            .map(|(id, t)| format!("{}:{}", json_string(id), t.to_json()))
            .collect();
        let timings: Vec<String> = self
            .timings_secs
            .iter()
            .map(|(id, s)| format!("{}:{}", json_string(id), fmt_f64(*s)))
            .collect();
        let trace = self
            .trace
            .as_ref()
            .map_or_else(|| "null".to_string(), TraceAggregates::to_json);
        let cache = self.cache.as_ref().map_or_else(
            || "null".to_string(),
            |c| {
                format!(
                    "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"promotions\":{},\
                     \"resident_rows\":{},\"resident_bytes\":{}}}",
                    c.hits, c.misses, c.evictions, c.promotions, c.resident_rows, c.resident_bytes
                )
            },
        );
        let service = self.service.clone().unwrap_or_else(|| "null".to_string());
        format!(
            "{{\"profile\":{},\"oracle\":{},\"timings_secs\":{{{}}},\"trace\":{},\
             \"cache\":{},\"service\":{},\"tables\":{{{}}}}}",
            json_string(&self.profile),
            json_string(&self.oracle),
            timings.join(","),
            trace,
            cache,
            service,
            tables.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureTable {
        FigureTable {
            title: "t".into(),
            x_label: "nodes".into(),
            columns: vec!["MOT".into(), "STUN".into()],
            rows: vec![
                ("9".into(), vec![1.5, 4.0]),
                ("1024".into(), vec![2.25, 30.125]),
            ],
        }
    }

    #[test]
    fn render_contains_all_cells() {
        let r = sample().render();
        assert!(r.contains("MOT"));
        assert!(r.contains("STUN"));
        assert!(r.contains("1024"));
        assert!(r.contains("30.125"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "nodes,MOT,STUN");
        assert!(lines[2].starts_with("1024,"));
    }

    #[test]
    fn column_lookup() {
        let t = sample();
        assert_eq!(t.column("MOT"), Some(vec![1.5, 2.25]));
        assert_eq!(t.column("nope"), None);
    }

    #[test]
    fn json_rendering_is_complete() {
        let j = sample().to_json();
        assert!(j.contains("\"columns\":[\"MOT\",\"STUN\"]"), "{j}");
        assert!(j.contains("{\"x\":\"1024\",\"ys\":[2.25,30.125]}"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn json_strings_escape_quotes_and_backslashes() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn run_report_embeds_tables_and_null_trace() {
        let r = RunReport {
            profile: "quick".into(),
            oracle: "auto".into(),
            tables: vec![("fig4".into(), sample())],
            timings_secs: vec![("fig4".into(), 1.5)],
            trace: None,
            cache: None,
            service: None,
        };
        let j = r.to_json();
        assert!(j.contains("\"fig4\":{\"title\""), "{j}");
        assert!(j.contains("\"trace\":null"), "{j}");
        assert!(j.contains("\"cache\":null"), "{j}");
        assert!(j.contains("\"service\":null"), "{j}");
        assert!(j.contains("\"timings_secs\":{\"fig4\":1.5}"), "{j}");
    }

    #[test]
    fn run_report_renders_cache_counters_and_service_trailer() {
        let r = RunReport {
            profile: "quick".into(),
            oracle: "cached".into(),
            cache: Some(CacheLedger {
                hits: 10,
                misses: 3,
                evictions: 1,
                promotions: 2,
                resident_rows: 4,
                resident_bytes: 4096,
            }),
            service: Some("{\"sent\":5}".into()),
            ..RunReport::default()
        };
        let j = r.to_json();
        assert!(
            j.contains("\"cache\":{\"hits\":10,\"misses\":3,\"evictions\":1,"),
            "{j}"
        );
        assert!(j.contains("\"service\":{\"sent\":5}"), "{j}");
    }
}
