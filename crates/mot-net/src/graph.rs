//! The weighted sensor-network graph `G = (V, E, w)`.

use crate::error::NetError;
use crate::node::{NodeId, Point};
use crate::Result;

/// A weighted half-edge stored in a node's adjacency list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    /// The neighbor this half-edge points to.
    pub to: NodeId,
    /// Normalized distance between the two adjacent sensors (`w` in the
    /// paper). Always finite and strictly positive.
    pub weight: f64,
}

/// A static, connected, undirected, weighted graph of sensor nodes.
///
/// Construction goes through [`crate::GraphBuilder`] (or a generator in
/// [`crate::generators`]), which validates weights and rejects duplicate
/// edges; once built the graph is immutable, matching the paper's static
/// network model (dynamism is layered on top in `mot-core::dynamics` by
/// masking nodes, not by mutating `G`).
#[derive(Clone, Debug)]
pub struct Graph {
    adjacency: Vec<Vec<Edge>>,
    positions: Option<Vec<Point>>,
    edge_count: usize,
}

impl Graph {
    pub(crate) fn from_parts(
        adjacency: Vec<Vec<Edge>>,
        positions: Option<Vec<Point>>,
        edge_count: usize,
    ) -> Self {
        Graph {
            adjacency,
            positions,
            edge_count,
        }
    }

    /// Number of sensor nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len()).map(NodeId::from_index)
    }

    /// The adjacency list of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[Edge] {
        &self.adjacency[u.index()]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u.index()].len()
    }

    /// Returns the weight of the undirected edge `(u, v)` if present.
    /// By convention `w(u, u) = 0` (the paper's assumption).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        if u == v {
            return Some(0.0);
        }
        self.adjacency[u.index()]
            .iter()
            .find(|e| e.to == v)
            .map(|e| e.weight)
    }

    /// True when `(u, v)` is an edge of `G`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u != v && self.adjacency[u.index()].iter().any(|e| e.to == v)
    }

    /// Iterator over undirected edges, each reported once with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, adj)| {
            let a = NodeId::from_index(i);
            adj.iter()
                .filter(move |e| a < e.to)
                .map(move |e| (a, e.to, e.weight))
        })
    }

    /// Geographic positions, if the graph carries them.
    pub fn positions(&self) -> Option<&[Point]> {
        self.positions.as_deref()
    }

    /// Geographic position of `u`, or an error if the graph has none.
    pub fn position(&self, u: NodeId) -> Result<Point> {
        self.positions
            .as_ref()
            .map(|p| p[u.index()])
            .ok_or(NetError::MissingPositions)
    }

    /// The smallest edge weight in the graph.
    pub fn min_edge_weight(&self) -> Option<f64> {
        self.edges().map(|(_, _, w)| w).fold(None, |acc, w| {
            Some(match acc {
                None => w,
                Some(m) => m.min(w),
            })
        })
    }

    /// Returns a copy of the graph with all edge weights rescaled so the
    /// shortest edge has weight exactly 1 (the paper's normalization; the
    /// cost-ratio bounds are then independent of the network's scale).
    pub fn normalized(&self) -> Graph {
        let Some(min_w) = self.min_edge_weight() else {
            return self.clone();
        };
        if (min_w - 1.0).abs() < f64::EPSILON {
            return self.clone();
        }
        let mut g = self.clone();
        for adj in &mut g.adjacency {
            for e in adj {
                e.weight /= min_w;
            }
        }
        g
    }

    /// Whether the graph is connected (trivially true for `n <= 1`).
    ///
    /// The paper assumes `G` is connected; generators assert this and the
    /// distance oracle rejects disconnected graphs.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1usize;
        while let Some(u) = stack.pop() {
            for e in &self.adjacency[u] {
                let v = e.to.index();
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == n
    }

    /// Sum of all edge weights — handy for sanity checks in tests.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 3.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
    }

    #[test]
    fn edge_weight_lookup_is_symmetric() {
        let g = triangle();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(0)), Some(1.0));
        assert_eq!(g.edge_weight(NodeId(0), NodeId(0)), Some(0.0));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (a, b, _) in edges {
            assert!(a < b);
        }
    }

    #[test]
    fn normalization_rescales_to_unit_minimum() {
        let g = triangle().normalized();
        let min = g.min_edge_weight().unwrap();
        assert!((min - 1.0).abs() < 1e-12);
        // relative proportions preserved
        assert!((g.edge_weight(NodeId(2), NodeId(0)).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_detection() {
        let g = triangle();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0).unwrap();
        let g = b.build_unchecked();
        assert!(!g.is_connected());
    }

    #[test]
    fn positions_absent_by_default() {
        let g = triangle();
        assert!(g.positions().is_none());
        assert_eq!(g.position(NodeId(0)), Err(NetError::MissingPositions));
    }
}
