//! Vehicle tracking: directional traffic through a city grid, MOT versus
//! the traffic-conscious baselines.
//!
//! ```text
//! cargo run --release --example vehicle_tracking
//! ```
//!
//! Vehicles drive shortest paths toward successive waypoints (not random
//! walks), producing the kind of correlated traffic the rate-based
//! baselines were designed to exploit. The baselines receive the
//! *measured* per-edge crossing rates of this very workload — the
//! strongest possible traffic knowledge — while MOT stays
//! traffic-oblivious, and still tracks at comparable maintenance cost
//! with far better worst-node load.

use mot_tracking::prelude::*;

fn main() {
    // A 16x16 road-intersection sensor grid.
    let bed = TestBed::grid(16, 16, 8).unwrap();
    let spec = WorkloadSpec {
        objects: 40,
        moves_per_object: 300,
        model: MobilityModel::Waypoint,
        seed: 21,
    };
    let traffic = spec.generate(&bed.graph);
    let rates = DetectionRates::from_moves(&bed.graph, &traffic.move_pairs());
    println!(
        "city: {} intersections; {} vehicles x {} hand-offs (waypoint mobility)\n",
        bed.graph.node_count(),
        spec.objects,
        spec.moves_per_object
    );

    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10}",
        "algorithm", "maint ratio", "query ratio", "max load", "correct"
    );
    for algo in [
        Algo::Mot,
        Algo::MotLb,
        Algo::Stun,
        Algo::Dat,
        Algo::Zdat,
        Algo::ZdatShortcuts,
    ] {
        let mut t = bed.make_tracker(algo, &rates).unwrap();
        run_publish(t.as_mut(), &traffic).expect("publish");
        let maint = replay_moves(t.as_mut(), &traffic, &bed.oracle).expect("replay");
        let q = run_queries(t.as_ref(), &bed.oracle, spec.objects, 400, 13).expect("queries");
        let loads = LoadStats::from_loads(&t.node_loads());
        println!(
            "{:<18} {:>12.2} {:>12.2} {:>10} {:>9}/400",
            algo.label(),
            maint.ratio(),
            q.cost.mean_ratio(),
            loads.max,
            q.correct
        );
        assert_eq!(q.correct, 400, "{} mislocated a vehicle", algo.label());
    }
    println!(
        "\nMOT is traffic-oblivious; STUN/DAT/Z-DAT consumed the measured \
         per-edge rates of this exact workload."
    );
}
