//! STUN — Scalable Tracking Using Networked sensors (Kung & Vlah \[18\]).
//!
//! STUN builds its hierarchy with **Drain-And-Balance (DAB)**: walk the
//! detection-rate thresholds from highest to lowest; at each threshold,
//! components connected by edges at or above it are merged, the smaller
//! component's subtree root attaching under the larger's (keeping
//! subtrees balanced). Sensor pairs with heavy object traffic therefore
//! merge early and sit close together in the tree — the whole point of
//! traffic-consciousness — while rarely-crossed adjacencies connect only
//! near the root.
//!
//! Because the result is a spanning tree shaped by rates rather than by
//! distance, tree paths can deviate badly from graph shortest paths
//! (Θ(D) on rings), which is exactly the weakness the paper's Figures
//! 4–7 expose.

use crate::traffic::DetectionRates;
use crate::tree::TrackingTree;
use mot_net::{Graph, NodeId};

/// Disjoint-set forest tracking each component's current subtree root.
struct Components {
    parent: Vec<usize>,
    size: Vec<usize>,
    /// tree root of the component's subtree
    root: Vec<NodeId>,
}

impl Components {
    fn new(n: usize) -> Self {
        Components {
            parent: (0..n).collect(),
            size: vec![1; n],
            root: (0..n).map(NodeId::from_index).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            self.parent[x] = self.find(self.parent[x]);
        }
        self.parent[x]
    }
}

/// Builds the STUN tracking tree from detection rates via DAB.
pub fn build_stun(g: &Graph, rates: &DetectionRates) -> TrackingTree {
    let n = g.node_count();
    let mut comps = Components::new(n);
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    for (a, b, _rate) in rates.edges_by_rate_desc() {
        let (ra, rb) = (comps.find(a.index()), comps.find(b.index()));
        if ra == rb {
            continue;
        }
        // Balance: the smaller component's subtree drains under the
        // larger's root.
        let (big, small) = if comps.size[ra] >= comps.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let (big_root, small_root) = (comps.root[big], comps.root[small]);
        parent[small_root.index()] = Some(big_root);
        comps.parent[small] = big;
        comps.size[big] += comps.size[small];
        comps.root[big] = big_root;
    }
    let top_comp = comps.find(0);
    let top = comps.root[top_comp];
    TrackingTree::from_parents(top, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeTracker;
    use mot_core::{ObjectId, Tracker};
    use mot_net::{generators, DenseOracle};

    #[test]
    fn spans_every_node() {
        let g = generators::grid(5, 5).unwrap();
        let t = build_stun(&g, &DetectionRates::uniform(&g));
        assert_eq!(t.len(), 25);
        for u in g.nodes() {
            // every node reaches the root
            let mut cur = u;
            let mut hops = 0;
            while let Some(p) = t.parent(cur) {
                cur = p;
                hops += 1;
                assert!(hops <= 25);
            }
            assert_eq!(cur, t.root());
        }
    }

    #[test]
    fn hot_pairs_sit_adjacent_in_the_tree() {
        // Heavy traffic between 0 and 1 merges them first: one becomes
        // the other's direct tree child.
        let g = generators::grid(4, 4).unwrap();
        let moves = vec![(NodeId(0), NodeId(1)); 50];
        let rates = DetectionRates::from_moves(&g, &moves);
        let t = build_stun(&g, &rates);
        let adjacent =
            t.parent(NodeId(0)) == Some(NodeId(1)) || t.parent(NodeId(1)) == Some(NodeId(0));
        assert!(adjacent, "hottest pair not adjacent in the DAB tree");
    }

    #[test]
    fn balanced_merges_keep_depth_logarithmic_under_uniform_rates() {
        let g = generators::grid(8, 8).unwrap();
        let t = build_stun(&g, &DetectionRates::uniform(&g));
        let max_depth = g.nodes().map(|u| t.depth(u)).max().unwrap();
        // size-balanced attachment: depth grows logarithmically, with
        // slack for merge-order effects
        assert!(
            max_depth <= 26,
            "depth {max_depth} too deep for balanced merges"
        );
    }

    #[test]
    fn ring_pathology_some_adjacency_pays_omega_n_in_the_tree() {
        // Any spanning tree of a ring cuts one ring edge; its endpoints
        // are graph-adjacent but Θ(n) apart in the tree — the cost-ratio
        // failure mode the paper attributes to tree baselines.
        let n = 32;
        let g = generators::ring(n).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let t = build_stun(&g, &DetectionRates::uniform(&g));
        let worst = g
            .edges()
            .map(|(a, b, _)| t.tree_distance(a, b, &m))
            .fold(0.0, f64::max);
        assert!(
            worst >= (n / 4) as f64,
            "worst adjacent tree distance {worst} < n/4"
        );
    }

    #[test]
    fn tracker_on_stun_tree_answers_queries() {
        let g = generators::grid(5, 5).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let t = build_stun(&g, &DetectionRates::uniform(&g));
        let mut tracker = TreeTracker::new("STUN", t, &m, false);
        tracker.publish(ObjectId(0), NodeId(12)).unwrap();
        tracker.move_object(ObjectId(0), NodeId(13)).unwrap();
        for x in g.nodes() {
            assert_eq!(tracker.query(x, ObjectId(0)).unwrap().proxy, NodeId(13));
        }
    }
}
