//! The wire protocol between sensor nodes.

use mot_core::ObjectId;
use mot_net::NodeId;

/// Message payloads. `Climb` doubles as the paper's `publish` and
/// `insert` detection messages (a publish is an insert that never meets);
/// `Delete` walks stale holders downward; `Repoint` refreshes the
/// down-member routing state of meet-level holders after a splice;
/// `SpInstall`/`SpRemove` maintain special detection lists; `Query` /
/// `Descend` / `Reply` implement lookups.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// A detection message climbing `DPath(origin)`, currently visiting
    /// `station(origin, level)[index]`.
    Climb {
        /// The tracked object being inserted or published.
        object: ObjectId,
        /// The (new) proxy whose detection path this climb follows.
        origin: NodeId,
        /// Level currently being visited on the detection path.
        level: usize,
        /// Position within the level's station currently being visited.
        index: usize,
        /// Complete holder list of the level below (becomes each new
        /// entry's down-member routing state).
        prev_members: Vec<NodeId>,
        /// Members already holding the object at the current level from
        /// this pass.
        added: Vec<NodeId>,
        /// Publish climbs never stop at a meet; inserts do.
        publish: bool,
    },
    /// Refresh the down-members of co-holders at the meet level after a
    /// splice (bookkeeping fan-out; not charged, mirroring the analysis'
    /// treatment of special-parent probing).
    Repoint {
        /// The object whose holder chain is being refreshed.
        object: ObjectId,
        /// The meet level whose holders are repointed.
        level: usize,
        /// The fresh down-member list each target installs.
        new_down: Vec<NodeId>,
        /// Meet-level holders still awaiting the refresh.
        targets_remaining: Vec<NodeId>,
    },
    /// Remove the object from holders at `level`: walk
    /// `members_remaining`, then — for stale-trail deletes
    /// (`continue_down`) — proceed to the level below via the last
    /// member's down-members. Rollback deletes (undoing a meet level's
    /// partial additions) set `continue_down = false`: the entries they
    /// remove point at the *fresh* fragment, which must survive.
    Delete {
        /// The object whose stale entries are removed.
        object: ObjectId,
        /// Level the deletion currently walks.
        level: usize,
        /// Holders at this level still awaiting removal.
        members_remaining: Vec<NodeId>,
        /// Whether the walk proceeds to the level below afterwards.
        continue_down: bool,
    },
    /// Install an SDL entry at a special parent.
    SpInstall {
        /// The object the SDL entry tracks.
        object: ObjectId,
        /// The level this special parent guards.
        guarded_level: usize,
        /// The guarded child holding the object below.
        child: NodeId,
    },
    /// Remove an SDL entry from a special parent.
    SpRemove {
        /// The object the SDL entry tracked.
        object: ObjectId,
        /// The level the special parent guarded.
        guarded_level: usize,
        /// The formerly guarded child.
        child: NodeId,
    },
    /// A query climbing `DPath(origin)`.
    Query {
        /// The object being looked up.
        object: ObjectId,
        /// The querying sensor whose detection path the climb follows.
        origin: NodeId,
        /// Level currently being visited on the detection path.
        level: usize,
        /// Position within the level's station currently being visited.
        index: usize,
    },
    /// A located query descending the holder chain; the receiver holds
    /// the object at `level`.
    Descend {
        /// The object being looked up.
        object: ObjectId,
        /// The querying sensor awaiting the reply.
        origin: NodeId,
        /// The level at which the receiver holds the object.
        level: usize,
    },
    /// The proxy's answer heading back to the querier.
    Reply {
        /// The object that was looked up.
        object: ObjectId,
        /// The bottom-level proxy currently nearest the object.
        proxy: NodeId,
    },
}

impl Payload {
    /// Whether the message's travel distance counts toward the
    /// operation's reported cost (the paper's ratios exclude
    /// special-parent maintenance; `Repoint` is the same kind of
    /// bookkeeping; `Reply` is reported separately).
    pub fn charged(&self) -> bool {
        matches!(
            self,
            Payload::Climb { .. }
                | Payload::Delete { .. }
                | Payload::Query { .. }
                | Payload::Descend { .. }
        )
    }

    /// The object this message concerns (used for per-object cost
    /// attribution in batched executions).
    pub fn object(&self) -> ObjectId {
        match *self {
            Payload::Climb { object, .. }
            | Payload::Repoint { object, .. }
            | Payload::Delete { object, .. }
            | Payload::SpInstall { object, .. }
            | Payload::SpRemove { object, .. }
            | Payload::Query { object, .. }
            | Payload::Descend { object, .. }
            | Payload::Reply { object, .. } => object,
        }
    }

    /// For climb/query messages that just crossed into a new level
    /// (station index 0 above the bottom), the level entered — the §4.1.2
    /// period gate applies to these.
    pub fn level_entry(&self) -> Option<usize> {
        match *self {
            Payload::Climb {
                level, index: 0, ..
            }
            | Payload::Query {
                level, index: 0, ..
            } if level > 0 => Some(level),
            _ => None,
        }
    }

    /// The trace ledger this payload's travel distance is billed under:
    /// the charged kinds split into publish / maintenance / query, the
    /// uncharged ones (SP updates, repoints, replies) are bookkeeping.
    pub fn trace_ledger(&self) -> mot_core::LedgerKind {
        use mot_core::LedgerKind;
        match self {
            Payload::Climb { publish: true, .. } => LedgerKind::Publish,
            Payload::Climb { .. } | Payload::Delete { .. } => LedgerKind::Maintenance,
            Payload::Query { .. } | Payload::Descend { .. } => LedgerKind::Query,
            Payload::Repoint { .. }
            | Payload::SpInstall { .. }
            | Payload::SpRemove { .. }
            | Payload::Reply { .. } => LedgerKind::Bookkeeping,
        }
    }

    /// The hierarchy level a trace event for this message is tagged with
    /// (the level being visited / guarded; 0 for replies, which carry no
    /// level of their own).
    pub fn trace_level(&self) -> usize {
        match *self {
            Payload::Climb { level, .. }
            | Payload::Repoint { level, .. }
            | Payload::Delete { level, .. }
            | Payload::Query { level, .. }
            | Payload::Descend { level, .. } => level,
            Payload::SpInstall { guarded_level, .. } | Payload::SpRemove { guarded_level, .. } => {
                guarded_level
            }
            Payload::Reply { .. } => 0,
        }
    }

    /// Short kind label for ledgers and debugging.
    pub fn kind(&self) -> &'static str {
        KIND_LABELS[self.kind_index()]
    }

    /// Dense index of this payload's ledger kind into [`KIND_LABELS`]
    /// (the retry account, which no payload carries, sits last). Lets
    /// the transport ledger bill into a flat array instead of hashing a
    /// label per delivery.
    pub fn kind_index(&self) -> usize {
        match self {
            Payload::Climb { publish: true, .. } => 0,
            Payload::Climb { .. } => 1,
            Payload::Repoint { .. } => 2,
            Payload::Delete { .. } => 3,
            Payload::SpInstall { .. } => 4,
            Payload::SpRemove { .. } => 5,
            Payload::Query { .. } => 6,
            Payload::Descend { .. } => 7,
            Payload::Reply { .. } => 8,
        }
    }
}

/// Number of ledger-kind accounts: the nine payload kinds of
/// [`Payload::kind_index`] plus the retry account.
pub const KIND_COUNT: usize = 10;

/// Ledger labels, indexed by [`Payload::kind_index`]; the last entry is
/// the retry account ([`crate::RETRIES_KIND`]).
pub const KIND_LABELS: [&str; KIND_COUNT] = [
    "publish",
    "insert",
    "repoint",
    "delete",
    "sp_install",
    "sp_remove",
    "query",
    "descend",
    "reply",
    "retries",
];

/// A message in flight between two sensors (routed along a shortest
/// physical path; its cost is the shortest-path distance).
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Sending sensor.
    pub src: NodeId,
    /// Receiving sensor.
    pub dst: NodeId,
    /// Protocol payload carried.
    pub payload: Payload,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_policy_matches_the_analysis() {
        let climb = Payload::Climb {
            object: ObjectId(0),
            origin: NodeId(0),
            level: 1,
            index: 0,
            prev_members: vec![],
            added: vec![],
            publish: false,
        };
        assert!(climb.charged());
        assert_eq!(climb.kind(), "insert");
        let sp = Payload::SpInstall {
            object: ObjectId(0),
            guarded_level: 1,
            child: NodeId(2),
        };
        assert!(!sp.charged());
        let rp = Payload::Repoint {
            object: ObjectId(0),
            level: 1,
            new_down: vec![],
            targets_remaining: vec![],
        };
        assert!(!rp.charged());
        let reply = Payload::Reply {
            object: ObjectId(0),
            proxy: NodeId(1),
        };
        assert!(!reply.charged());
        assert_eq!(reply.kind(), "reply");
    }
}
