//! DAT — Deviation-Avoidance Tree (Lin et al. \[21\]).
//!
//! A tree avoids deviation when every node's tree distance to the sink
//! equals its graph distance (no detour on the query/update path to the
//! root). Lin et al. additionally honor traffic: among the edges that
//! preserve zero deviation, the higher-detection-rate edge is connected
//! first, so hot adjacencies share low ancestors where possible.
//!
//! Construction: shortest-path distances from the sink, then each node
//! picks as parent the *tight* neighbor (one lying on some shortest path
//! to the sink) with maximal detection rate, ties broken by node id.

use crate::traffic::DetectionRates;
use crate::tree::TrackingTree;
use mot_net::{dijkstra, Graph, NodeId};

/// Builds the deviation-avoidance tree rooted at `sink`.
pub fn build_dat(g: &Graph, rates: &DetectionRates, sink: NodeId) -> TrackingTree {
    let dist = dijkstra(g, sink);
    let mut parent: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for u in g.nodes() {
        if u == sink {
            continue;
        }
        let du = dist[u.index()];
        let best = g
            .neighbors(u)
            .iter()
            .filter(|e| (dist[e.to.index()] + e.weight - du).abs() < 1e-9)
            .max_by(|x, y| {
                rates
                    .rate(u, x.to)
                    .partial_cmp(&rates.rate(u, y.to))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(y.to.cmp(&x.to)) // smaller id wins on rate ties
            })
            .expect("connected graph: every node has a tight neighbor");
        parent[u.index()] = Some(best.to);
    }
    TrackingTree::from_parents(sink, parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_net::{generators, DenseOracle};

    #[test]
    fn zero_deviation_on_grids() {
        let g = generators::grid(6, 6).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let t = build_dat(&g, &DetectionRates::uniform(&g), NodeId(0));
        assert!(t.max_deviation(&m) < 1e-9, "DAT must be deviation-free");
    }

    #[test]
    fn zero_deviation_on_weighted_random_geometric() {
        let g = generators::random_geometric(50, 8.0, 2.0, 9).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let t = build_dat(&g, &DetectionRates::uniform(&g), NodeId(3));
        assert!(t.max_deviation(&m) < 1e-6);
    }

    #[test]
    fn rates_steer_tie_breaks() {
        // Node 5 of a 3x3 grid (center-right) has two tight parents
        // toward sink 0: node 4 (left) and node 2 (up). Heavy traffic on
        // (5, 2) must select 2.
        let g = generators::grid(3, 3).unwrap();
        let moves = vec![(NodeId(5), NodeId(2)); 10];
        let rates = DetectionRates::from_moves(&g, &moves);
        let t = build_dat(&g, &rates, NodeId(0));
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(2)));
        // and with traffic on (5, 4) instead it must select 4
        let moves = vec![(NodeId(5), NodeId(4)); 10];
        let rates = DetectionRates::from_moves(&g, &moves);
        let t = build_dat(&g, &rates, NodeId(0));
        assert_eq!(t.parent(NodeId(5)), Some(NodeId(4)));
    }

    #[test]
    fn uniform_rates_break_ties_by_smaller_id() {
        let g = generators::grid(3, 3).unwrap();
        let t = build_dat(&g, &DetectionRates::uniform(&g), NodeId(0));
        // node 4 has tight parents 1 and 3 (both distance 1 from sink);
        // equal rates -> smaller id 1
        assert_eq!(t.parent(NodeId(4)), Some(NodeId(1)));
    }

    #[test]
    fn sink_is_root_with_everyone_attached() {
        let g = generators::ring(12).unwrap();
        let t = build_dat(&g, &DetectionRates::uniform(&g), NodeId(7));
        assert_eq!(t.root(), NodeId(7));
        for u in g.nodes() {
            if u != t.root() {
                assert!(t.parent(u).is_some());
            }
        }
    }
}
