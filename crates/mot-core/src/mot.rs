//! The MOT tracker — Algorithm 1 with parent sets, special parents, and
//! the optional §5 load-balancing extension.
//!
//! One-by-one semantics: each call runs to completion before the next
//! starts (the paper's primary analysis case; the concurrent execution
//! engine in `mot-sim` layers message timing on top of the same
//! transitions).
//!
//! **Distance locality.** Every oracle read the tracker issues is
//! between a node and one of its overlay stations, or between two
//! stations of adjacent levels — pairs whose separation is bounded by
//! `O(2^ℓ)` at level `ℓ`, never arbitrary node pairs. On-demand
//! backends like [`mot_net::CachedOracle`] exploit exactly this: a
//! tracker workload settles small source-centered regions (plus a hot
//! set of high-level stations that promote to cached rows) instead of
//! ever needing an all-pairs table.

use crate::config::MotConfig;
use crate::error::CoreError;
use crate::lb::ClusterTable;
use crate::object::ObjectId;
use crate::state::{NodeStores, ObjectRecord, SpEntry, TrailLevel};
use crate::trace::{LedgerKind, OpKind, TraceEvent, TracePhase, TraceSink};
use crate::tracker::{MoveOutcome, QueryResult, Tracker};
use crate::Result;
use mot_hierarchy::Overlay;
use mot_net::{DistanceOracle, NodeId};
use std::collections::HashMap;

/// Mobile Object Tracking using sensors.
pub struct MotTracker<'a> {
    overlay: &'a Overlay,
    oracle: &'a dyn DistanceOracle,
    cfg: MotConfig,
    stores: NodeStores,
    records: HashMap<ObjectId, ObjectRecord>,
    clusters: Option<ClusterTable>,
    /// Per-node liveness under the fault model (true = crashed).
    down: Vec<bool>,
    /// Number of nodes currently down (0 ⇒ skip liveness checks).
    down_count: usize,
    /// Whether any crash ever happened (false ⇒ skip damage scans, so a
    /// fault-free run costs exactly what it did before the fault layer).
    ever_crashed: bool,
    /// Message distance spent on crash repair (handoffs + re-publishes).
    repair_spent: f64,
    /// Optional structured-trace consumer. `None` (the default) keeps
    /// every hot path free of event construction — see [`crate::trace`].
    sink: Option<&'a dyn TraceSink>,
    /// Freelist of [`TrailLevel`]s pruned by moves/repairs, recycled by
    /// the next climb so steady-state trail surgery reuses capacity
    /// instead of allocating. Values are cleared on recycle; reuse is
    /// capacity-only, so costs stay bit-identical to fresh allocation
    /// (DESIGN.md §16).
    spare_levels: Vec<TrailLevel>,
    /// Reusable container for the fresh trail fragment a move builds
    /// (drained into the spliced trail at the end of each move).
    frag_buf: Vec<TrailLevel>,
}

/// Cap on [`MotTracker::spare_levels`]: enough to absorb a full-height
/// prune while keeping a crash-heavy run's high-water mark bounded.
const SPARE_LEVEL_CAP: usize = 64;

impl<'a> MotTracker<'a> {
    /// Creates a tracker over a prebuilt overlay.
    pub fn new(overlay: &'a Overlay, oracle: &'a dyn DistanceOracle, cfg: MotConfig) -> Self {
        let clusters = cfg
            .load_balance
            .then(|| ClusterTable::build(overlay, oracle));
        MotTracker {
            overlay,
            oracle,
            cfg,
            stores: NodeStores::new(overlay.node_count()),
            records: HashMap::new(),
            clusters,
            down: vec![false; overlay.node_count()],
            down_count: 0,
            ever_crashed: false,
            repair_spent: 0.0,
            sink: None,
            spare_levels: Vec::new(),
            frag_buf: Vec::new(),
        }
    }

    /// Pops a cleared [`TrailLevel`] off the freelist (or allocates an
    /// empty one). Recycled levels are cleared at recycle time, so the
    /// value handed out is indistinguishable from `TrailLevel::default()`
    /// except for retained capacity.
    #[inline]
    fn take_level(&mut self) -> TrailLevel {
        self.spare_levels.pop().unwrap_or_default()
    }

    /// Returns a pruned [`TrailLevel`] to the freelist, clearing its
    /// contents so no holder or SP entry can leak into a later operation.
    #[inline]
    fn recycle_level(&mut self, mut tl: TrailLevel) {
        if self.spare_levels.len() < SPARE_LEVEL_CAP {
            tl.holders.clear();
            tl.sp_entries.clear();
            self.spare_levels.push(tl);
        }
    }

    /// Attaches a structured-trace sink: every billed message hop will
    /// emit a [`TraceEvent`] and every completed operation a summary.
    /// Without a sink no event is ever constructed, so traced-off runs
    /// are bit-identical to the uninstrumented tracker.
    pub fn with_sink(mut self, sink: &'a dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    #[inline]
    fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(s) = self.sink {
            s.event(&f());
        }
    }

    #[inline]
    fn emit_op(&self, op: OpKind, o: ObjectId, cost: f64) {
        if let Some(s) = self.sink {
            s.op_complete(op, o, cost);
        }
    }

    /// Emits one billed hop (free when no sink is attached).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn hop(
        &self,
        op: OpKind,
        phase: TracePhase,
        ledger: LedgerKind,
        o: ObjectId,
        src: NodeId,
        dst: NodeId,
        level: usize,
        distance: f64,
    ) {
        self.emit(|| TraceEvent {
            op,
            phase,
            ledger,
            object: o,
            src,
            dst,
            level: level as u32,
            distance,
        });
    }

    /// The overlay this tracker runs on.
    pub fn overlay(&self) -> &Overlay {
        self.overlay
    }

    /// Ids of all currently tracked objects.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.records.keys().copied()
    }

    fn check_node(&self, u: NodeId) -> Result<()> {
        if u.index() >= self.overlay.node_count() {
            return Err(CoreError::UnknownNode(u));
        }
        Ok(())
    }

    /// Physical placement of role `(node, level)`'s entry for `o` plus
    /// the de Bruijn route cost to reach it (0 unless load balancing).
    fn placement(&self, node: NodeId, level: usize, o: ObjectId) -> (NodeId, f64) {
        match (&self.clusters, level) {
            (Some(t), l) if l >= 1 => {
                let p = t.placement(node, l, o, self.oracle);
                let cost = if self.cfg.count_lb_cost {
                    p.route_cost
                } else {
                    0.0
                };
                (p.holder, cost)
            }
            _ => (node, 0.0),
        }
    }

    /// [`Self::placement`] plus a `LbRoute` trace event when the de
    /// Bruijn round is billed (used on charged paths only — probe-only
    /// callers use `placement` directly and stay silent).
    fn placement_traced(
        &self,
        node: NodeId,
        level: usize,
        o: ObjectId,
        op: OpKind,
        ledger: LedgerKind,
    ) -> (NodeId, f64) {
        let (holder, cost) = self.placement(node, level, o);
        if cost != 0.0 {
            self.hop(
                op,
                TracePhase::LbRoute,
                ledger,
                o,
                node,
                holder,
                level,
                cost,
            );
        }
        (holder, cost)
    }

    /// Installs the SDL entry guarding holder `child` (station index `j`
    /// of `path_origin`'s level-`level` station). Returns the entry (for
    /// the trail) and any counted cost.
    #[allow(clippy::too_many_arguments)]
    fn install_sp(
        &mut self,
        path_origin: NodeId,
        level: usize,
        j: usize,
        child: NodeId,
        o: ObjectId,
        op: OpKind,
        ledger: LedgerKind,
    ) -> (Option<SpEntry>, f64) {
        if !self.cfg.use_special_parents {
            return (None, 0.0);
        }
        let sp_level = self.overlay.sp_level(level);
        if sp_level == level {
            // Near the root special parents are undefined (§3); the root
            // itself already guards everything.
            return (None, 0.0);
        }
        let host = self.overlay.sp_host(path_origin, level, j);
        let (holder, lb_cost) = self.placement_traced(host, sp_level, o, op, ledger);
        let entry = SpEntry {
            host,
            child,
            holder,
        };
        self.stores.sdl_add(entry, level, o);
        let mut cost = lb_cost;
        if self.cfg.count_sp_cost {
            let d = self.oracle.dist(child, host);
            cost += d;
            self.hop(op, TracePhase::SpInstall, ledger, o, child, host, level, d);
        }
        (Some(entry), cost)
    }

    fn remove_sp(
        &mut self,
        entry: SpEntry,
        level: usize,
        o: ObjectId,
        op: OpKind,
        ledger: LedgerKind,
    ) -> f64 {
        self.stores.sdl_remove(entry, level, o);
        if self.cfg.count_sp_cost {
            let d = self.oracle.dist(entry.child, entry.host);
            self.hop(
                op,
                TracePhase::SpRemove,
                ledger,
                o,
                entry.child,
                entry.host,
                level,
                d,
            );
            d
        } else {
            0.0
        }
    }

    /// Walks the trail downward from `(from_node, from_level)` to the
    /// proxy following DL holders, accumulating cost. At each level the
    /// message forwards to the nearest child holder (sensors know their
    /// geographic locations, §2.1).
    ///
    /// `trace` carries the billed operation context, or `None` when the
    /// walk is a hypothetical cost probe (`descend_cost`/`locate_cost`
    /// feed the concurrent engine's planning and must stay silent).
    fn descend(
        &self,
        rec: &ObjectRecord,
        o: ObjectId,
        from_node: NodeId,
        from_level: usize,
        trace: Option<(OpKind, LedgerKind)>,
    ) -> f64 {
        let mut cost = 0.0;
        let mut cur = from_node;
        for level in (0..from_level).rev() {
            let next = self
                .oracle
                .nearest_in(cur, &rec.trail[level].holders)
                .expect("trail levels are never empty");
            let d = self.oracle.dist(cur, next);
            cost += d;
            if let Some((op, ledger)) = trace {
                self.hop(op, TracePhase::Descend, ledger, o, cur, next, level, d);
            }
            cur = next;
        }
        cost
    }

    /// Whether `node` currently holds `o` in its level-`level` detection
    /// list (committed state; used by the concurrent execution engine).
    pub fn holds(&self, node: NodeId, level: usize, o: ObjectId) -> bool {
        self.stores.dl_has(node, level, o)
    }

    /// First SDL entry for `o` at `node`: the guarded level and special
    /// child, if any (committed state).
    pub fn sdl_lookup(&self, node: NodeId, o: ObjectId) -> Option<(usize, NodeId)> {
        self.stores.sdl_get(node, o)
    }

    /// Cost of descending the current trail of `o` from `(node, level)`
    /// to the proxy, or `None` for an unpublished object.
    pub fn descend_cost(&self, o: ObjectId, node: NodeId, level: usize) -> Option<f64> {
        self.records
            .get(&o)
            .map(|rec| self.descend(rec, o, node, level, None))
    }

    /// The tracker's configuration.
    pub fn config(&self) -> &MotConfig {
        &self.cfg
    }

    /// If a query probing `(node, level)` can locate `o` from here — via
    /// the DL or, when enabled, the SDL — the cost of the downward phase;
    /// `None` when this probe misses (committed state).
    pub fn locate_cost(&self, node: NodeId, _level: usize, o: ObjectId) -> Option<f64> {
        let rec = self.records.get(&o)?;
        if let Some(found_level) = self.stores.dl_lowest_level(node, o) {
            return Some(self.descend(rec, o, node, found_level, None));
        }
        if self.cfg.use_special_parents {
            if let Some((guarded_level, child)) = self.stores.sdl_get(node, o) {
                return Some(
                    self.oracle.dist(node, child)
                        + self.descend(rec, o, child, guarded_level, None),
                );
            }
        }
        None
    }

    /// Climbs `DPath(proxy)` from scratch, installing a complete trail
    /// for `o` — the publish path, reused verbatim by crash repair so a
    /// repaired object is indistinguishable from a freshly published one.
    fn build_trail(
        &mut self,
        o: ObjectId,
        proxy: NodeId,
        op: OpKind,
        ledger: LedgerKind,
    ) -> (Vec<TrailLevel>, f64) {
        // `overlay` is a shared borrow with the tracker's own lifetime;
        // copying the reference out of `self` lets station slices outlive
        // the `&mut self` calls below, so no per-level copy is needed.
        let overlay = self.overlay;
        let h = overlay.height();
        let mut cost = 0.0;
        let mut cur = proxy;
        let mut trail = Vec::with_capacity(h + 1);
        for level in 0..=h {
            let station = overlay.station(proxy, level);
            let mut tl = self.take_level();
            for (j, &s) in station.iter().enumerate() {
                let d = self.oracle.dist(cur, s);
                cost += d;
                self.hop(op, TracePhase::Climb, ledger, o, cur, s, level, d);
                cur = s;
                let (holder, lb_cost) = self.placement_traced(s, level, o, op, ledger);
                cost += lb_cost;
                self.stores.dl_add(s, level, o, holder);
                tl.holders.push(s);
                let (entry, sp_cost) = self.install_sp(proxy, level, j, s, o, op, ledger);
                cost += sp_cost;
                if let Some(e) = entry {
                    tl.sp_entries.push(e);
                }
            }
            trail.push(tl);
        }
        (trail, cost)
    }

    /// The live node nearest to `u` (deterministic tie-break by id) —
    /// the handoff target when a proxy crashes.
    fn nearest_live(&self, u: NodeId) -> Option<NodeId> {
        let live: Vec<NodeId> = (0..self.overlay.node_count())
            .map(NodeId::from_index)
            .filter(|&v| v != u && !self.down[v.index()])
            .collect();
        self.oracle.nearest_in(u, &live)
    }

    /// The first crashed node on `DPath(v)`, if any — an operation
    /// climbing from `v` cannot get past it until the node reboots.
    fn path_blocked(&self, v: NodeId) -> Option<NodeId> {
        if self.down_count == 0 {
            return None;
        }
        (0..=self.overlay.height())
            .flat_map(|l| self.overlay.station(v, l).iter().copied())
            .find(|s| self.down[s.index()])
    }

    /// The first node on `o`'s recorded trail whose DL entry was lost to
    /// a crash (or that is itself still down), if any.
    fn damage_in(&self, o: ObjectId, rec: &ObjectRecord) -> Option<NodeId> {
        for (level, tl) in rec.trail.iter().enumerate() {
            for &hnode in &tl.holders {
                if self.down[hnode.index()] || !self.stores.dl_has(hnode, level, o) {
                    return Some(hnode);
                }
            }
        }
        None
    }

    /// Tears down what is left of `o`'s trail and re-publishes it from
    /// `proxy` (the current proxy unless a crash handoff picked a new
    /// one), billing the climb to the repair account.
    fn repair_now(&mut self, o: ObjectId, new_proxy: Option<NodeId>) -> Result<f64> {
        let rec = self.records.get(&o).ok_or(CoreError::UnknownObject(o))?;
        let proxy = match new_proxy {
            Some(p) => p,
            None => {
                let p = rec.proxy();
                if self.down[p.index()] {
                    self.nearest_live(p).ok_or(CoreError::NodeDown(p))?
                } else {
                    p
                }
            }
        };
        if let Some(s) = self.path_blocked(proxy) {
            // A crashed hierarchy node sits on the re-publish path:
            // defer — the next operation after it reboots finishes.
            return Err(CoreError::NodeDown(s));
        }
        let rec = self.records.remove(&o).expect("checked above");
        // Scrub the surviving entries of the damaged trail. These are
        // local state drops (the dead node's entries are already gone);
        // the messages billed are the re-publish climb below.
        for (level, tl) in rec.trail.iter().enumerate() {
            for &hnode in &tl.holders {
                let (holder, _) = self.placement(hnode, level, o);
                self.stores.dl_remove(hnode, level, o, holder);
            }
            for &e in &tl.sp_entries {
                self.stores.sdl_remove(e, level, o);
            }
        }
        // The scrubbed levels feed the freelist so the re-publish climb
        // below allocates nothing.
        for tl in rec.trail {
            self.recycle_level(tl);
        }
        let (trail, cost) = self.build_trail(o, proxy, OpKind::Repair, LedgerKind::Repair);
        self.records.insert(o, ObjectRecord { trail });
        self.repair_spent += cost;
        self.emit_op(OpKind::Repair, o, cost);
        Ok(cost)
    }

    /// Verifies the structural invariants of every object record; used by
    /// tests and exposed for the simulator's sanity sweeps. Panics with a
    /// description on violation.
    pub fn check_invariants(&self) {
        let h = self.overlay.height();
        for (&o, rec) in &self.records {
            assert_eq!(rec.trail.len(), h + 1, "{o:?}: trail height mismatch");
            assert_eq!(
                rec.trail[0].holders.len(),
                1,
                "{o:?}: proxy level must be single"
            );
            for (level, tl) in rec.trail.iter().enumerate() {
                assert!(!tl.holders.is_empty(), "{o:?}: empty trail level {level}");
                assert!(
                    tl.holders.windows(2).all(|w| w[0] < w[1]),
                    "{o:?}: unsorted holders at level {level}"
                );
                for &hnode in &tl.holders {
                    assert!(
                        self.stores.dl_has(hnode, level, o),
                        "{o:?}: trail holder {hnode} lost its level-{level} DL entry"
                    );
                }
            }
            let root = self.overlay.root();
            assert!(
                rec.trail[h].holders.contains(&root),
                "{o:?}: root dropped from the trail"
            );
        }
    }
}

impl Tracker for MotTracker<'_> {
    fn name(&self) -> String {
        match (self.cfg.load_balance, self.cfg.use_special_parents) {
            (true, _) => "MOT+LB".to_string(),
            (false, true) => "MOT".to_string(),
            (false, false) => "MOT-noSP".to_string(),
        }
    }

    fn publish(&mut self, o: ObjectId, proxy: NodeId) -> Result<f64> {
        self.check_node(proxy)?;
        if self.records.contains_key(&o) {
            return Err(CoreError::AlreadyPublished(o));
        }
        if let Some(s) = self.path_blocked(proxy) {
            return Err(CoreError::NodeDown(s));
        }
        let (trail, cost) = self.build_trail(o, proxy, OpKind::Publish, LedgerKind::Publish);
        self.records.insert(o, ObjectRecord { trail });
        self.emit_op(OpKind::Publish, o, cost);
        Ok(cost)
    }

    fn move_object(&mut self, o: ObjectId, to: NodeId) -> Result<MoveOutcome> {
        self.check_node(to)?;
        if !self.records.contains_key(&o) {
            return Err(CoreError::UnknownObject(o));
        }
        if let Some(s) = self.path_blocked(to) {
            return Err(CoreError::NodeDown(s));
        }
        if self.ever_crashed {
            // Self-repair: a move touching a crash-damaged trail first
            // re-publishes the pointer path, then proceeds normally.
            self.repair_object(o)?;
        }
        let from = self.records.get(&o).expect("checked above").proxy();
        if from == to {
            self.emit_op(OpKind::Move, o, 0.0);
            return Ok(MoveOutcome { from, cost: 0.0 });
        }
        let op = OpKind::Move;
        let ledger = LedgerKind::Maintenance;
        // Copy the overlay reference out of `self` (see `build_trail`):
        // station slices then borrow the overlay, not the tracker, so the
        // per-level `.to_vec()` copies this loop used to make are gone.
        let overlay = self.overlay;
        let h = overlay.height();
        let mut cost = 0.0;
        let mut cur = to;

        // ---- insert: climb DPath(to) until a node already holds o ------
        // Level 0: the new proxy takes the object.
        let mut new_levels = std::mem::take(&mut self.frag_buf);
        debug_assert!(new_levels.is_empty());
        {
            let (holder, lb_cost) = self.placement_traced(to, 0, o, op, ledger);
            cost += lb_cost;
            self.stores.dl_add(to, 0, o, holder);
            let mut tl = self.take_level();
            tl.holders.push(to);
            let (entry, sp_cost) = self.install_sp(to, 0, 0, to, o, op, ledger);
            cost += sp_cost;
            if let Some(e) = entry {
                tl.sp_entries.push(e);
            }
            new_levels.push(tl);
        }
        let mut meet: Option<(usize, NodeId)> = None;
        'climb: for level in 1..=h {
            let station = overlay.station(to, level);
            let mut tl = self.take_level();
            for (j, &s) in station.iter().enumerate() {
                let d = self.oracle.dist(cur, s);
                cost += d;
                self.hop(op, TracePhase::Climb, ledger, o, cur, s, level, d);
                cur = s;
                // Probing the DL costs a de Bruijn round within the
                // cluster in load-balanced mode.
                let (holder, lb_cost) = self.placement_traced(s, level, o, op, ledger);
                cost += lb_cost;
                if self.stores.dl_has(s, level, o) {
                    // Found the lowest ancestor already holding o: the
                    // insert stops here (Algorithm 1, line 9). Additions
                    // made at the meet level before the holder was found
                    // are rolled back with a reverse walk, so every trail
                    // level remains the complete parent set of a single
                    // origin — the invariant that keeps the distributed
                    // (message-passing) rendering's routing state exact.
                    // sp_entries, when present, pair positionally with
                    // holders (SP applicability depends only on the level).
                    debug_assert!(
                        tl.sp_entries.is_empty() || tl.sp_entries.len() == tl.holders.len()
                    );
                    let mut back = s;
                    for ri in (0..tl.holders.len()).rev() {
                        let rs = tl.holders[ri];
                        let d = self.oracle.dist(back, rs);
                        cost += d;
                        self.hop(op, TracePhase::Rollback, ledger, o, back, rs, level, d);
                        back = rs;
                        let (h2, lb2) = self.placement_traced(rs, level, o, op, ledger);
                        cost += lb2;
                        self.stores.dl_remove(rs, level, o, h2);
                        if let Some(&e) = tl.sp_entries.get(ri) {
                            cost += self.remove_sp(e, level, o, op, ledger);
                        }
                    }
                    meet = Some((level, s));
                    self.recycle_level(tl);
                    break 'climb;
                }
                self.stores.dl_add(s, level, o, holder);
                tl.holders.push(s);
                let (entry, sp_cost) = self.install_sp(to, level, j, s, o, op, ledger);
                cost += sp_cost;
                if let Some(e) = entry {
                    tl.sp_entries.push(e);
                }
            }
            new_levels.push(tl);
        }
        let (meet_level, meet_node) = meet.expect("the root always holds every published object");

        // ---- delete: walk the stale trail below the meet downward ------
        let mut rec = self.records.remove(&o).expect("record checked above");
        let mut dcur = meet_node;
        for level in (0..meet_level).rev() {
            let tl = std::mem::take(&mut rec.trail[level]);
            for &hnode in &tl.holders {
                let d = self.oracle.dist(dcur, hnode);
                cost += d;
                self.hop(op, TracePhase::Prune, ledger, o, dcur, hnode, level, d);
                dcur = hnode;
                let (holder, lb_cost) = self.placement_traced(hnode, level, o, op, ledger);
                cost += lb_cost;
                self.stores.dl_remove(hnode, level, o, holder);
            }
            for &e in &tl.sp_entries {
                cost += self.remove_sp(e, level, o, op, ledger);
            }
            self.recycle_level(tl);
        }

        // ---- splice the new fragment under the old upper trail ---------
        // Write the fresh fragment (levels 0..meet_level-1) over the
        // scrubbed slots of the record's existing trail vector, keeping
        // both the trail vector and the fragment buffer alive across
        // moves (capacity-only reuse, DESIGN.md §16).
        debug_assert_eq!(new_levels.len(), meet_level);
        for (level, tl) in new_levels.drain(..).enumerate() {
            rec.trail[level] = tl;
        }
        self.frag_buf = new_levels;
        debug_assert_eq!(rec.trail.len(), h + 1);
        self.records.insert(o, rec);
        self.emit_op(OpKind::Move, o, cost);
        Ok(MoveOutcome { from, cost })
    }

    fn query(&self, from: NodeId, o: ObjectId) -> Result<QueryResult> {
        self.check_node(from)?;
        let rec = self.records.get(&o).ok_or(CoreError::UnknownObject(o))?;
        if self.ever_crashed {
            // A read-only query cannot repair; surface the dead node so
            // a mutable caller can run `repair_object` and retry.
            if let Some(s) = self.damage_in(o, rec) {
                return Err(CoreError::NodeDown(s));
            }
            if let Some(s) = self.path_blocked(from) {
                return Err(CoreError::NodeDown(s));
            }
        }
        let proxy = rec.proxy();
        let op = OpKind::Query;
        let ledger = LedgerKind::Query;
        let h = self.overlay.height();
        let mut cost = 0.0;
        let mut cur = from;
        for level in 0..=h {
            for &s in self.overlay.station(from, level) {
                let d = self.oracle.dist(cur, s);
                cost += d;
                self.hop(op, TracePhase::Climb, ledger, o, cur, s, level, d);
                cur = s;
                // DL probe (pays the intra-cluster route when balanced).
                // A physical node knows the DL of every role it plays, so
                // the probe may hit any level; descending from the lowest
                // is cheapest.
                let (_, lb_cost) = self.placement_traced(s, level, o, op, ledger);
                cost += lb_cost;
                if let Some(found_level) = self.stores.dl_lowest_level(s, o) {
                    cost += self.descend(rec, o, s, found_level, Some((op, ledger)));
                    self.emit_op(op, o, cost);
                    return Ok(QueryResult { proxy, cost });
                }
                if self.cfg.use_special_parents {
                    if let Some((guarded_level, child)) = self.stores.sdl_get(s, o) {
                        // Jump to the special child, then follow its DL
                        // trail down (Algorithm 1, line 24).
                        let jump = self.oracle.dist(s, child);
                        cost += jump;
                        self.hop(op, TracePhase::SdlJump, ledger, o, s, child, level, jump);
                        cost += self.descend(rec, o, child, guarded_level, Some((op, ledger)));
                        self.emit_op(op, o, cost);
                        return Ok(QueryResult { proxy, cost });
                    }
                }
            }
        }
        unreachable!("the root station always resolves a published object")
    }

    fn proxy_of(&self, o: ObjectId) -> Option<NodeId> {
        self.records.get(&o).map(|r| r.proxy())
    }

    fn node_loads(&self) -> Vec<usize> {
        self.stores.loads().to_vec()
    }

    fn crash_node(&mut self, u: NodeId) {
        if u.index() >= self.overlay.node_count() || self.down[u.index()] {
            return;
        }
        self.down[u.index()] = true;
        self.down_count += 1;
        self.ever_crashed = true;
        self.stores.wipe_node(u);
        // Graceful degradation: objects proxied at the crashed sensor
        // are re-detected by the nearest live sensor, which takes over
        // as proxy immediately (one handoff hop, billed as repair). The
        // rest of the pointer path is re-published lazily by the next
        // operation that notices the damage.
        let mut orphaned: Vec<ObjectId> = self
            .records
            .iter()
            .filter(|(_, rec)| rec.proxy() == u)
            .map(|(&o, _)| o)
            .collect();
        orphaned.sort();
        for o in orphaned {
            let Some(next) = self.nearest_live(u) else {
                break;
            };
            let d = self.oracle.dist(u, next);
            self.repair_spent += d;
            self.hop(
                OpKind::Repair,
                TracePhase::Handoff,
                LedgerKind::Repair,
                o,
                u,
                next,
                0,
                d,
            );
            self.emit_op(OpKind::Repair, o, d);
            let (holder, _) = self.placement(next, 0, o);
            let old_sp = {
                let rec = self
                    .records
                    .get_mut(&o)
                    .expect("orphan ids come from records");
                rec.trail[0].holders = vec![next];
                std::mem::take(&mut rec.trail[0].sp_entries)
            };
            self.stores.dl_add(next, 0, o, holder);
            for e in old_sp {
                // Old guards point at the dead proxy; drop them locally.
                self.stores.sdl_remove(e, 0, o);
            }
        }
    }

    fn recover_node(&mut self, u: NodeId) {
        if u.index() < self.overlay.node_count() && self.down[u.index()] {
            self.down[u.index()] = false;
            self.down_count -= 1;
        }
    }

    fn repair_object(&mut self, o: ObjectId) -> Result<f64> {
        if !self.ever_crashed {
            return Ok(0.0);
        }
        let damaged = {
            let rec = self.records.get(&o).ok_or(CoreError::UnknownObject(o))?;
            self.damage_in(o, rec).is_some()
        };
        if !damaged {
            return Ok(0.0);
        }
        self.repair_now(o, None)
    }

    fn repair_cost(&self) -> f64 {
        self.repair_spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mot_hierarchy::{build_doubling, OverlayConfig};
    use mot_net::DenseOracle;
    use mot_net::{generators, Graph};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    struct Fixture {
        g: Graph,
        m: DenseOracle,
        overlay: Overlay,
    }

    fn fixture(rows: usize, cols: usize) -> Fixture {
        let g = generators::grid(rows, cols).unwrap();
        let m = DenseOracle::build(&g).unwrap();
        let overlay = build_doubling(&g, &m, &OverlayConfig::practical(), 11);
        Fixture { g, m, overlay }
    }

    #[test]
    fn publish_then_query_from_everywhere() {
        let f = fixture(6, 6);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let o = ObjectId(0);
        let proxy = NodeId(14);
        let cost = t.publish(o, proxy).unwrap();
        assert!(cost > 0.0);
        t.check_invariants();
        for x in f.g.nodes() {
            let r = t.query(x, o).unwrap();
            assert_eq!(r.proxy, proxy, "query from {x}");
            assert!(r.cost.is_finite() && r.cost >= 0.0);
        }
        // querying from the proxy itself is free
        assert_eq!(t.query(proxy, o).unwrap().cost, 0.0);
    }

    #[test]
    fn publish_twice_is_an_error() {
        let f = fixture(3, 3);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        t.publish(ObjectId(0), NodeId(0)).unwrap();
        assert_eq!(
            t.publish(ObjectId(0), NodeId(1)),
            Err(CoreError::AlreadyPublished(ObjectId(0)))
        );
    }

    #[test]
    fn unknown_object_and_node_errors() {
        let f = fixture(3, 3);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        assert_eq!(
            t.query(NodeId(0), ObjectId(5)),
            Err(CoreError::UnknownObject(ObjectId(5)))
        );
        assert_eq!(
            t.move_object(ObjectId(5), NodeId(0)),
            Err(CoreError::UnknownObject(ObjectId(5)))
        );
        assert_eq!(
            t.publish(ObjectId(0), NodeId(99)),
            Err(CoreError::UnknownNode(NodeId(99)))
        );
    }

    #[test]
    fn move_updates_proxy_and_preserves_queries() {
        let f = fixture(6, 6);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let o = ObjectId(3);
        t.publish(o, NodeId(0)).unwrap();
        let mv = t.move_object(o, NodeId(7)).unwrap();
        assert_eq!(mv.from, NodeId(0));
        assert!(mv.cost > 0.0);
        assert_eq!(t.proxy_of(o), Some(NodeId(7)));
        t.check_invariants();
        for x in f.g.nodes() {
            assert_eq!(t.query(x, o).unwrap().proxy, NodeId(7));
        }
    }

    #[test]
    fn move_to_same_proxy_is_free() {
        let f = fixture(4, 4);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        t.publish(ObjectId(0), NodeId(5)).unwrap();
        let mv = t.move_object(ObjectId(0), NodeId(5)).unwrap();
        assert_eq!(mv.cost, 0.0);
        assert_eq!(mv.from, NodeId(5));
    }

    #[test]
    fn random_walk_keeps_invariants_and_query_correctness() {
        let f = fixture(8, 8);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let objects: Vec<ObjectId> = (0..5).map(ObjectId).collect();
        let mut proxies = Vec::new();
        for &o in &objects {
            let p = NodeId(rng.gen_range(0..64));
            t.publish(o, p).unwrap();
            proxies.push(p);
        }
        for step in 0..300 {
            let i = rng.gen_range(0..objects.len());
            let cur = proxies[i];
            let nbrs = f.g.neighbors(cur);
            let next = nbrs[rng.gen_range(0..nbrs.len())].to;
            let mv = t.move_object(objects[i], next).unwrap();
            assert_eq!(mv.from, cur, "step {step}");
            proxies[i] = next;
            if step % 37 == 0 {
                t.check_invariants();
                let from = NodeId(rng.gen_range(0..64));
                let q = t.query(from, objects[i]).unwrap();
                assert_eq!(q.proxy, next);
            }
        }
        t.check_invariants();
        // all queries resolve to true proxies
        for (i, &o) in objects.iter().enumerate() {
            for x in f.g.nodes() {
                assert_eq!(t.query(x, o).unwrap().proxy, proxies[i]);
            }
        }
    }

    #[test]
    fn adjacent_move_is_cheap_fig1_style() {
        // An object hopping one grid edge should cost far less than a
        // publish: the insert meets the old trail at a low level.
        let f = fixture(8, 8);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let o = ObjectId(0);
        t.publish(o, NodeId(27)).unwrap();
        let mv = t.move_object(o, NodeId(28)).unwrap();
        let diameter = f.m.diameter();
        assert!(
            mv.cost < 2.0 * diameter,
            "adjacent move cost {} should not dwarf the diameter {diameter}",
            mv.cost
        );
    }

    #[test]
    fn query_cost_scales_with_distance() {
        // Fresh publish: a query from distance d costs O(d) (Thm 4.11).
        let f = fixture(8, 8);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let o = ObjectId(0);
        let proxy = NodeId(0);
        t.publish(o, proxy).unwrap();
        for x in [NodeId(1), NodeId(9), NodeId(63)] {
            let q = t.query(x, o).unwrap();
            let d = f.m.dist(x, proxy);
            assert!(
                q.cost <= 40.0 * d.max(1.0),
                "query from {x}: cost {} vs distance {d}",
                q.cost
            );
        }
    }

    #[test]
    fn special_parents_bound_fragmented_query_cost() {
        // Recreate Fig. 2: drag the object through many distinct proxies
        // so the trail fragments, then compare nearby-query costs with
        // and without special parents. SP must never lose, and the
        // scenario must stay correct in both modes.
        let f = fixture(8, 8);
        let mut with_sp = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let mut without = MotTracker::new(&f.overlay, &f.m, MotConfig::no_special_parents());
        let o = ObjectId(0);
        for t in [&mut with_sp, &mut without] {
            t.publish(o, NodeId(63)).unwrap();
        }
        let tour = [56, 7, 62, 1, 57, 6, 58, 5, 59, 4]; // zig-zag fragmentation
        for &p in &tour {
            with_sp.move_object(o, NodeId(p)).unwrap();
            without.move_object(o, NodeId(p)).unwrap();
        }
        let proxy = NodeId(*tour.last().unwrap());
        let neighbor = NodeId(3); // adjacent to final proxy 4
        let qs = with_sp.query(neighbor, o).unwrap();
        let qn = without.query(neighbor, o).unwrap();
        assert_eq!(qs.proxy, proxy);
        assert_eq!(qn.proxy, proxy);
        assert!(
            qs.cost <= qn.cost + 1e-9,
            "SP query {} > no-SP {}",
            qs.cost,
            qn.cost
        );
    }

    #[test]
    fn load_balanced_mode_reduces_max_load() {
        let f = fixture(8, 8);
        let mut plain = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let mut lb = MotTracker::new(&f.overlay, &f.m, MotConfig::load_balanced());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for k in 0..40 {
            let p = NodeId(rng.gen_range(0..64));
            plain.publish(ObjectId(k), p).unwrap();
            lb.publish(ObjectId(k), p).unwrap();
        }
        let max_plain = *plain.node_loads().iter().max().unwrap();
        let max_lb = *lb.node_loads().iter().max().unwrap();
        assert!(
            max_lb < max_plain,
            "LB max load {max_lb} not below plain {max_plain}"
        );
        // total entries conserved between modes
        assert_eq!(
            plain.node_loads().iter().sum::<usize>(),
            lb.node_loads().iter().sum::<usize>()
        );
    }

    #[test]
    fn load_balanced_queries_remain_correct() {
        let f = fixture(6, 6);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::load_balanced());
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        t.publish(ObjectId(0), NodeId(0)).unwrap();
        let mut proxy = NodeId(0);
        for _ in 0..60 {
            let nbrs = f.g.neighbors(proxy);
            proxy = nbrs[rng.gen_range(0..nbrs.len())].to;
            t.move_object(ObjectId(0), proxy).unwrap();
        }
        for x in f.g.nodes() {
            let q = t.query(x, ObjectId(0)).unwrap();
            assert_eq!(q.proxy, proxy);
        }
        // LB probing costs are included, so queries cost at least as much
        // as the plain-mode distance floor of zero.
        assert!(t.query(proxy, ObjectId(0)).unwrap().cost >= 0.0);
    }

    #[test]
    fn crashed_proxy_hands_object_to_live_neighbor() {
        let f = fixture(6, 6);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let o = ObjectId(0);
        t.publish(o, NodeId(14)).unwrap();
        t.crash_node(NodeId(14));
        let new_proxy = t.proxy_of(o).unwrap();
        assert_ne!(new_proxy, NodeId(14), "object handed off the dead proxy");
        assert_eq!(
            f.m.dist(NodeId(14), new_proxy),
            1.0,
            "handoff goes to the nearest live sensor"
        );
        assert!(t.repair_cost() > 0.0, "the handoff hop is billed as repair");
        t.recover_node(NodeId(14));
        // the next touch finishes the repair; queries then resolve to
        // the handoff proxy from everywhere
        t.repair_object(o).unwrap();
        for x in f.g.nodes() {
            assert_eq!(t.query(x, o).unwrap().proxy, new_proxy);
        }
        t.check_invariants();
    }

    #[test]
    fn crash_mid_trail_query_surfaces_node_down_then_repairs() {
        let f = fixture(8, 8);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let o = ObjectId(0);
        t.publish(o, NodeId(0)).unwrap();
        // crash an internal (non-proxy) holder on the trail
        let victim = (0..64)
            .map(NodeId::from_index)
            .find(|&v| v != NodeId(0) && (1..=f.overlay.height()).any(|l| t.holds(v, l, o)))
            .expect("a published trail has internal holders");
        t.crash_node(victim);
        t.recover_node(victim);
        let err = t.query(NodeId(63), o).unwrap_err();
        assert!(matches!(err, CoreError::NodeDown(_)), "got {err:?}");
        let c = t.repair_object(o).unwrap();
        assert!(c > 0.0, "repair re-publishes the path");
        assert!(t.repair_cost() >= c);
        assert_eq!(t.query(NodeId(63), o).unwrap().proxy, NodeId(0));
        assert_eq!(t.repair_object(o).unwrap(), 0.0, "repair is idempotent");
        t.check_invariants();
    }

    #[test]
    fn move_self_repairs_after_proxy_crash() {
        let f = fixture(6, 6);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let o = ObjectId(0);
        t.publish(o, NodeId(14)).unwrap();
        t.crash_node(NodeId(14));
        t.recover_node(NodeId(14));
        let handoff = t.proxy_of(o).unwrap();
        let mv = t.move_object(o, NodeId(21)).unwrap();
        assert_eq!(mv.from, handoff, "move starts from the handoff proxy");
        assert_eq!(t.proxy_of(o), Some(NodeId(21)));
        for x in f.g.nodes() {
            assert_eq!(t.query(x, o).unwrap().proxy, NodeId(21));
        }
        t.check_invariants();
    }

    #[test]
    fn operations_refuse_paths_through_down_nodes() {
        let f = fixture(6, 6);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        t.crash_node(NodeId(14));
        assert_eq!(
            t.publish(ObjectId(0), NodeId(14)),
            Err(CoreError::NodeDown(NodeId(14)))
        );
        t.recover_node(NodeId(14));
        t.publish(ObjectId(0), NodeId(14)).unwrap();
    }

    #[test]
    fn trace_event_distances_sum_to_op_costs() {
        use crate::trace::MemorySink;
        // Every completed operation's event distances must sum exactly
        // (same accumulation order) to the cost the tracker returned.
        for cfg in [
            MotConfig::plain(),
            MotConfig::no_special_parents(),
            MotConfig::load_balanced(),
        ] {
            let f = fixture(6, 6);
            let sink = MemorySink::new();
            let mut t = MotTracker::new(&f.overlay, &f.m, cfg).with_sink(&sink);
            let o = ObjectId(0);
            let pc = t.publish(o, NodeId(14)).unwrap();
            let mv = t.move_object(o, NodeId(21)).unwrap();
            let q = t.query(NodeId(0), o).unwrap();
            let ops = sink.ops();
            assert_eq!(
                ops.iter().map(|(k, _, _)| *k).collect::<Vec<_>>(),
                vec![OpKind::Publish, OpKind::Move, OpKind::Query]
            );
            assert_eq!(ops[0].2, pc);
            assert_eq!(ops[1].2, mv.cost);
            assert_eq!(ops[2].2, q.cost);
            // event-by-event: group by op position and re-sum
            let evs = sink.events();
            let publish_sum: f64 = evs
                .iter()
                .filter(|e| e.op == OpKind::Publish)
                .map(|e| e.distance)
                .sum();
            let move_sum: f64 = evs
                .iter()
                .filter(|e| e.op == OpKind::Move)
                .map(|e| e.distance)
                .sum();
            let query_sum: f64 = evs
                .iter()
                .filter(|e| e.op == OpKind::Query)
                .map(|e| e.distance)
                .sum();
            assert!((publish_sum - pc).abs() < 1e-9);
            assert!((move_sum - mv.cost).abs() < 1e-9);
            assert!((query_sum - q.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn tracing_disabled_is_bit_identical() {
        use crate::trace::MemorySink;
        let f = fixture(6, 6);
        let sink = MemorySink::new();
        let mut traced = MotTracker::new(&f.overlay, &f.m, MotConfig::plain()).with_sink(&sink);
        let mut silent = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let o = ObjectId(0);
        assert_eq!(
            traced.publish(o, NodeId(3)).unwrap(),
            silent.publish(o, NodeId(3)).unwrap()
        );
        for p in [4, 12, 20, 19] {
            let a = traced.move_object(o, NodeId(p)).unwrap();
            let b = silent.move_object(o, NodeId(p)).unwrap();
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
        for x in [NodeId(0), NodeId(35), NodeId(17)] {
            let a = traced.query(x, o).unwrap();
            let b = silent.query(x, o).unwrap();
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
    }

    #[test]
    fn probe_paths_emit_no_events() {
        use crate::trace::MemorySink;
        let f = fixture(6, 6);
        let sink = MemorySink::new();
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain()).with_sink(&sink);
        let o = ObjectId(0);
        t.publish(o, NodeId(14)).unwrap();
        let before = sink.events().len();
        // Hypothetical probes used by the concurrent engine must stay
        // silent — they are not billed operations.
        let _ = t.locate_cost(NodeId(0), 0, o);
        let _ = t.descend_cost(o, f.overlay.root(), f.overlay.height());
        assert_eq!(sink.events().len(), before);
    }

    #[test]
    fn repair_events_bill_the_repair_ledger() {
        use crate::trace::{LedgerKind, MemorySink};
        let f = fixture(6, 6);
        let sink = MemorySink::new();
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain()).with_sink(&sink);
        let o = ObjectId(0);
        t.publish(o, NodeId(14)).unwrap();
        t.crash_node(NodeId(14));
        t.recover_node(NodeId(14));
        t.repair_object(o).unwrap();
        let repair_total = sink.ledger_total(LedgerKind::Repair);
        assert!(
            (repair_total - t.repair_cost()).abs() < 1e-9,
            "repair ledger {repair_total} != repair_spent {}",
            t.repair_cost()
        );
    }

    #[test]
    fn loads_return_to_baseline_after_move_cycles() {
        let f = fixture(6, 6);
        let mut t = MotTracker::new(&f.overlay, &f.m, MotConfig::plain());
        let o = ObjectId(0);
        t.publish(o, NodeId(0)).unwrap();
        let baseline: usize = t.node_loads().iter().sum();
        // wander away and back
        for p in [1, 2, 8, 14, 8, 2, 1, 0] {
            t.move_object(o, NodeId(p)).unwrap();
        }
        let now: usize = t.node_loads().iter().sum();
        // Entry count can differ (trail fragments differ from the publish
        // path) but must stay within the structural budget: stations ×
        // levels, with no leak proportional to the number of moves.
        let budget: usize = (0..=f.overlay.height())
            .map(|l| f.overlay.station(NodeId(0), l).len().max(8))
            .sum::<usize>()
            * 2;
        assert!(now <= baseline + budget, "load leak: {baseline} -> {now}");
        t.check_invariants();
    }
}
