//! End-to-end checks of the observability layer: histogram bucket
//! geometry, cross-seed mergeability, fixed-seed trace determinism, and
//! the bit-parity guarantee (tracing disabled changes nothing).

use mot_baselines::DetectionRates;
use mot_core::MemorySink;
use mot_sim::{
    replay_moves, replay_moves_observed, run_publish, run_queries, run_queries_observed, Algo,
    Histogram, Recorder, TestBed, WorkloadSpec,
};

const OBJECTS: usize = 6;

fn bed() -> TestBed {
    TestBed::grid(10, 10, 7).unwrap()
}

#[test]
fn histogram_buckets_are_log_spaced_powers_of_two() {
    // bucket 0 = [0,1), bucket i = [2^(i-1), 2^i)
    assert_eq!(Histogram::bucket_bounds(0), (0.0, 1.0));
    assert_eq!(Histogram::bucket_bounds(1), (1.0, 2.0));
    assert_eq!(Histogram::bucket_bounds(4), (8.0, 16.0));
    for (x, want) in [
        (0.0, 0),
        (0.999, 0),
        (1.0, 1),
        (1.999, 1),
        (2.0, 2),
        (4.0, 3),
        (1024.0, 11),
    ] {
        assert_eq!(Histogram::bucket_index(x), want, "bucket of {x}");
        if want > 0 {
            let (lo, hi) = Histogram::bucket_bounds(want);
            assert!(lo <= x && x < hi, "{x} outside its bucket [{lo},{hi})");
        }
    }
}

#[test]
fn aggregates_merge_across_seeds_like_one_combined_stream() {
    let b = bed();
    let mut merged: Option<mot_sim::TraceAggregates> = None;
    let mut total_events = 0.0;
    for seed in [1u64, 2] {
        let rec = Recorder::new();
        let w = WorkloadSpec::new(OBJECTS, 50, seed).generate(&b.graph);
        let rates = DetectionRates::from_moves(&b.graph, &w.move_pairs());
        let mut t = b.make_tracker_traced(Algo::Mot, &rates, &rec).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        replay_moves(t.as_mut(), &w, &b.oracle).unwrap();
        drop(t);
        let agg = rec.finish();
        total_events += agg.ledger.total();
        match merged.as_mut() {
            Some(m) => m.merge(&agg),
            None => merged = Some(agg),
        }
    }
    let merged = merged.unwrap();
    assert!(merged.ledger.total() > 0.0);
    assert!(
        (merged.ledger.total() - total_events).abs() < 1e-9,
        "merged ledger total must equal the sum of per-seed totals"
    );
    // both seeds published + moved: ops counted for both runs
    let moves: usize = merged
        .op_counts
        .iter()
        .filter(|(k, _)| *k == mot_core::OpKind::Move)
        .map(|(_, n)| *n)
        .sum();
    assert_eq!(moves, 2 * OBJECTS * 50);
}

#[test]
fn fixed_seed_traces_are_deterministic() {
    let run = || {
        let b = bed();
        let sink = MemorySink::new();
        let w = WorkloadSpec::new(OBJECTS, 40, 3).generate(&b.graph);
        let rates = DetectionRates::from_moves(&b.graph, &w.move_pairs());
        let mut t = b.make_tracker_traced(Algo::Mot, &rates, &sink).unwrap();
        run_publish(t.as_mut(), &w).unwrap();
        replay_moves(t.as_mut(), &w, &b.oracle).unwrap();
        run_queries(t.as_ref(), &b.oracle, OBJECTS, 50, 9).unwrap();
        sink.events()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed must produce an identical event stream");
}

#[test]
fn tracing_disabled_is_bit_identical_to_a_traced_run() {
    // The acceptance bar: attaching a sink is purely observational. A
    // silent tracker and a traced tracker over the same workload must
    // produce bit-identical cost stats (total, optimal, ratio).
    for algo in [Algo::Mot, Algo::MotLb, Algo::Stun, Algo::Zdat] {
        let b = bed();
        let w = WorkloadSpec::new(OBJECTS, 60, 5).generate(&b.graph);
        let rates = DetectionRates::from_moves(&b.graph, &w.move_pairs());

        let mut silent = b.make_tracker(algo, &rates).unwrap();
        run_publish(silent.as_mut(), &w).unwrap();
        let m1 = replay_moves(silent.as_mut(), &w, &b.oracle).unwrap();
        let q1 = run_queries(silent.as_ref(), &b.oracle, OBJECTS, 80, 2).unwrap();

        let rec = Recorder::new();
        let mut traced = b.make_tracker_traced(algo, &rates, &rec).unwrap();
        run_publish(traced.as_mut(), &w).unwrap();
        let m2 = replay_moves(traced.as_mut(), &w, &b.oracle).unwrap();
        let q2 = run_queries(traced.as_ref(), &b.oracle, OBJECTS, 80, 2).unwrap();

        let label = algo.label();
        assert_eq!(m1.total.to_bits(), m2.total.to_bits(), "{label} total");
        assert_eq!(
            m1.optimal.to_bits(),
            m2.optimal.to_bits(),
            "{label} optimal"
        );
        assert_eq!(m1.ratio().to_bits(), m2.ratio().to_bits(), "{label} ratio");
        assert_eq!(
            q1.cost.total.to_bits(),
            q2.cost.total.to_bits(),
            "{label} query total"
        );
        assert_eq!(q1.correct, q2.correct, "{label} query correctness");

        // and the trace accounted for every billed maintenance unit
        drop(traced);
        let agg = rec.finish();
        let maint = agg.ledger.ledger_total(mot_core::LedgerKind::Maintenance);
        assert!(
            (maint - m2.total).abs() <= 1e-6 * m2.total.max(1.0),
            "{label}: ledger maintenance {maint} vs stats total {}",
            m2.total
        );
    }
}

#[test]
fn observed_variants_fill_histograms_without_changing_stats() {
    let b = bed();
    let w = WorkloadSpec::new(OBJECTS, 50, 11).generate(&b.graph);
    let rates = DetectionRates::from_moves(&b.graph, &w.move_pairs());

    let mut plain = b.make_tracker(Algo::Mot, &rates).unwrap();
    run_publish(plain.as_mut(), &w).unwrap();
    let m1 = replay_moves(plain.as_mut(), &w, &b.oracle).unwrap();
    let q1 = run_queries(plain.as_ref(), &b.oracle, OBJECTS, 70, 4).unwrap();

    let mut observed = b.make_tracker(Algo::Mot, &rates).unwrap();
    let mut move_ratios = Histogram::new();
    let mut query_ratios = Histogram::new();
    run_publish(observed.as_mut(), &w).unwrap();
    let m2 = replay_moves_observed(observed.as_mut(), &w, &b.oracle, &mut move_ratios).unwrap();
    let q2 = run_queries_observed(
        observed.as_ref(),
        &b.oracle,
        OBJECTS,
        70,
        4,
        &mut query_ratios,
    )
    .unwrap();

    assert_eq!(m1, m2, "observed replay must not change the stats");
    assert_eq!(q1, q2, "observed queries must not change the stats");
    assert_eq!(
        move_ratios.count,
        m2.operations as u64 - m2.zero_optimal_ops as u64
    );
    assert_eq!(query_ratios.count, q2.cost.operations as u64);
    // per-op ratios never undercut the optimal
    assert_eq!(Histogram::bucket_index(move_ratios.mean()).min(1), 1);
}
