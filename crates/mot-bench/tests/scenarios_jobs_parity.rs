//! The determinism contract (DESIGN.md §12) applied to the scenario
//! suite: every scenario table — five family details, the summary, and
//! the smoke gates — must be byte-identical whatever `--jobs` says,
//! both through the library API and end-to-end through the
//! `experiments` binary's CSV output.

use mot_bench::{scenario_tables, scenarios_smoke_table, ScenarioProfile};

fn all_bytes(p: ScenarioProfile) -> Vec<(String, String, String)> {
    scenario_tables(&p)
        .expect("scenario sweep")
        .into_iter()
        .map(|(id, t)| (id, t.to_csv(), t.to_json()))
        .collect()
}

#[test]
fn scenario_tables_are_byte_identical_for_1_and_4_jobs() {
    let one = all_bytes(ScenarioProfile::smoke().with_jobs(1));
    let four = all_bytes(ScenarioProfile::smoke().with_jobs(4));
    assert_eq!(one.len(), four.len());
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.0, b.0, "table order differs across --jobs");
        assert_eq!(a.1, b.1, "CSV bytes differ for '{}'", a.0);
        assert_eq!(a.2, b.2, "JSON bytes differ for '{}'", a.0);
    }
}

#[test]
fn smoke_table_is_byte_identical_for_1_and_4_jobs() {
    let a = scenarios_smoke_table(1).expect("smoke jobs=1");
    let b = scenarios_smoke_table(4).expect("smoke jobs=4");
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}

/// End-to-end parity through the `experiments` binary: the `scenarios`
/// family writes six CSV files (`scenarios-<family>.csv` × 5 plus the
/// `scenarios.csv` summary) and all six must match byte-for-byte
/// across `--jobs`.
#[test]
fn scenarios_binary_csv_is_byte_identical_across_jobs() {
    let exe = env!("CARGO_BIN_EXE_experiments");
    let tmp = std::env::temp_dir().join(format!("scenarios-parity-{}", std::process::id()));
    let files = [
        "scenarios-waypoint.csv",
        "scenarios-levy.csv",
        "scenarios-hotspot.csv",
        "scenarios-zipf.csv",
        "scenarios-adversarial.csv",
        "scenarios.csv",
    ];
    let mut outputs: Vec<Vec<Vec<u8>>> = Vec::new();
    for jobs in ["1", "4"] {
        let csv = tmp.join(format!("j{jobs}"));
        std::fs::create_dir_all(&csv).expect("tmp dir");
        let status = std::process::Command::new(exe)
            .args([
                "--profile",
                "quick",
                "--jobs",
                jobs,
                "--csv",
                csv.to_str().unwrap(),
                "scenarios",
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("run experiments");
        assert!(
            status.success(),
            "experiments scenarios --jobs {jobs} failed"
        );
        outputs.push(
            files
                .iter()
                .map(|f| std::fs::read(csv.join(f)).unwrap_or_else(|_| panic!("missing {f}")))
                .collect(),
        );
    }
    let _ = std::fs::remove_dir_all(&tmp);
    for (f, (a, b)) in files.iter().zip(outputs[0].iter().zip(&outputs[1])) {
        assert_eq!(a, b, "{f} differs across --jobs");
    }
}
