//! Detection-list storage and per-object trails.
//!
//! A physical sensor can play internal-node roles at several overlay
//! levels; the paper treats each role's detection list separately ("when
//! it performs operations as an internal node it can only store the
//! detected objects that are in the detection lists of its child nodes").
//! DL membership is therefore keyed by *(node, level)* — a bitmask of
//! levels per (node, object) pair. SDL entries additionally remember the
//! guarded level and the special child that installed them.
//!
//! The *trail* of an object is the current chain of DL holders from the
//! root down to the proxy — the concatenation of detection-path fragments
//! that maintenance operations splice together (Fig. 2's fragmentation is
//! exactly a trail whose levels come from different proxies' paths).

use crate::object::ObjectId;
use mot_net::NodeId;
use std::collections::HashMap;

/// One SDL installation: `host` guards `child` (a DL holder at the trail
/// level this entry belongs to); the entry is physically charged to
/// `holder` (different from `host` only in load-balanced mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpEntry {
    /// The special parent guarding the entry.
    pub host: NodeId,
    /// The DL holder this entry points down to.
    pub child: NodeId,
    /// The node physically charged for the entry (a hashed cluster
    /// member under load balancing, otherwise `host` itself).
    pub holder: NodeId,
}

/// Per-level slice of an object's trail.
#[derive(Clone, Debug, Default)]
pub struct TrailLevel {
    /// Nodes holding the object in their level-ℓ DL, sorted by id.
    pub holders: Vec<NodeId>,
    /// SDL installations guarding this level.
    pub sp_entries: Vec<SpEntry>,
}

/// Full per-object record: `trail[ℓ]` for `ℓ = 0..=h`;
/// `trail[0].holders == [proxy]`.
#[derive(Clone, Debug)]
pub struct ObjectRecord {
    /// `trail[ℓ]` is the object's level-ℓ slice, bottom (proxy) first.
    pub trail: Vec<TrailLevel>,
}

impl ObjectRecord {
    /// The current proxy.
    pub fn proxy(&self) -> NodeId {
        self.trail[0].holders[0]
    }
}

/// The distributed DL/SDL state of every node, with physical load
/// accounting.
#[derive(Clone, Debug)]
pub struct NodeStores {
    /// node → object → bitmask of levels at which the node holds the
    /// object in its DL.
    dl: Vec<HashMap<ObjectId, u64>>,
    /// node → object → SDL entries hosted there (guarded level, child).
    sdl: Vec<HashMap<ObjectId, Vec<(u8, NodeId)>>>,
    /// Physical per-node entry counts (who actually stores the record —
    /// under load balancing a hashed cluster member, not the role node).
    load: Vec<usize>,
}

impl NodeStores {
    /// Empty stores for an `n`-node deployment.
    pub fn new(n: usize) -> Self {
        NodeStores {
            dl: vec![HashMap::new(); n],
            sdl: vec![HashMap::new(); n],
            load: vec![0; n],
        }
    }

    /// Does `node` hold `o` in its level-`level` DL?
    pub fn dl_has(&self, node: NodeId, level: usize, o: ObjectId) -> bool {
        self.dl[node.index()]
            .get(&o)
            .map(|mask| mask & (1u64 << level) != 0)
            .unwrap_or(false)
    }

    /// The lowest level at which `node` holds `o` in any of its DL roles
    /// (a physical sensor playing several internal-node roles knows its
    /// whole detection list, so a query probing it can exploit every
    /// role; the lowest level descends cheapest).
    pub fn dl_lowest_level(&self, node: NodeId, o: ObjectId) -> Option<usize> {
        self.dl[node.index()]
            .get(&o)
            .filter(|&&mask| mask != 0)
            .map(|mask| mask.trailing_zeros() as usize)
    }

    /// Adds `o` to `node`'s level-`level` DL, charging the entry to
    /// `holder`. Returns false if it was already present.
    pub fn dl_add(&mut self, node: NodeId, level: usize, o: ObjectId, holder: NodeId) -> bool {
        let mask = self.dl[node.index()].entry(o).or_insert(0);
        let bit = 1u64 << level;
        if *mask & bit != 0 {
            return false;
        }
        *mask |= bit;
        self.load[holder.index()] += 1;
        true
    }

    /// Removes `o` from `node`'s level-`level` DL, releasing `holder`'s
    /// charge. Returns false if it was not present.
    pub fn dl_remove(&mut self, node: NodeId, level: usize, o: ObjectId, holder: NodeId) -> bool {
        let entry = self.dl[node.index()].get_mut(&o);
        let Some(mask) = entry else { return false };
        let bit = 1u64 << level;
        if *mask & bit == 0 {
            return false;
        }
        *mask &= !bit;
        if *mask == 0 {
            self.dl[node.index()].remove(&o);
        }
        self.load[holder.index()] = self.load[holder.index()].saturating_sub(1);
        true
    }

    /// The canonical SDL entry for `o` hosted at `node`, if any — the
    /// minimum (guarded level, child) pair, so lookups are independent of
    /// installation order (and the lowest guarded level descends
    /// cheapest).
    pub fn sdl_get(&self, node: NodeId, o: ObjectId) -> Option<(usize, NodeId)> {
        self.sdl[node.index()]
            .get(&o)
            .and_then(|v| v.iter().min())
            .map(|&(lvl, child)| (lvl as usize, child))
    }

    /// Installs an SDL entry.
    pub fn sdl_add(&mut self, e: SpEntry, level: usize, o: ObjectId) {
        self.sdl[e.host.index()]
            .entry(o)
            .or_default()
            .push((level as u8, e.child));
        self.load[e.holder.index()] += 1;
    }

    /// Removes a previously installed SDL entry.
    pub fn sdl_remove(&mut self, e: SpEntry, level: usize, o: ObjectId) {
        let entries = self.sdl[e.host.index()].get_mut(&o);
        let Some(v) = entries else { return };
        if let Some(pos) = v
            .iter()
            .position(|&(l, c)| l == level as u8 && c == e.child)
        {
            v.swap_remove(pos);
            if v.is_empty() {
                self.sdl[e.host.index()].remove(&o);
            }
            self.load[e.holder.index()] = self.load[e.holder.index()].saturating_sub(1);
        }
    }

    /// Simulates a crash of node `u`: every DL and SDL entry physically
    /// stored there is lost. Returns the number of entries wiped.
    ///
    /// Load accounting assumes entries are charged to the node that
    /// stores them (plain mode); the fault model does not compose with
    /// load-balanced placement, whose entries live on hashed cluster
    /// members.
    pub fn wipe_node(&mut self, u: NodeId) -> usize {
        let dl = std::mem::take(&mut self.dl[u.index()]);
        let sdl = std::mem::take(&mut self.sdl[u.index()]);
        let wiped = dl
            .values()
            .map(|mask| mask.count_ones() as usize)
            .sum::<usize>()
            + sdl.values().map(Vec::len).sum::<usize>();
        self.load[u.index()] = self.load[u.index()].saturating_sub(wiped);
        wiped
    }

    /// Physical per-node load snapshot.
    pub fn loads(&self) -> &[usize] {
        &self.load
    }

    /// Total DL entries across all nodes (testing aid).
    pub fn total_dl_entries(&self) -> usize {
        self.dl
            .iter()
            .flat_map(|m| m.values())
            .map(|mask| mask.count_ones() as usize)
            .sum()
    }

    /// Total SDL entries across all nodes (testing aid).
    pub fn total_sdl_entries(&self) -> usize {
        self.sdl.iter().flat_map(|m| m.values()).map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl_bitmask_tracks_levels_independently() {
        let mut s = NodeStores::new(4);
        let (n, o) = (NodeId(2), ObjectId(7));
        assert!(s.dl_add(n, 0, o, n));
        assert!(s.dl_add(n, 3, o, n));
        assert!(!s.dl_add(n, 3, o, n), "double add reports absent");
        assert!(s.dl_has(n, 0, o));
        assert!(s.dl_has(n, 3, o));
        assert!(!s.dl_has(n, 1, o));
        assert_eq!(s.loads()[2], 2);
        assert!(s.dl_remove(n, 0, o, n));
        assert!(!s.dl_has(n, 0, o));
        assert!(s.dl_has(n, 3, o));
        assert!(!s.dl_remove(n, 0, o, n));
        assert_eq!(s.loads()[2], 1);
    }

    #[test]
    fn load_charged_to_designated_holder() {
        let mut s = NodeStores::new(4);
        // role node 0, physical holder 3 (load-balanced placement)
        s.dl_add(NodeId(0), 1, ObjectId(1), NodeId(3));
        assert_eq!(s.loads(), &[0, 0, 0, 1]);
        assert!(
            s.dl_has(NodeId(0), 1, ObjectId(1)),
            "lookup stays role-keyed"
        );
        s.dl_remove(NodeId(0), 1, ObjectId(1), NodeId(3));
        assert_eq!(s.loads(), &[0, 0, 0, 0]);
    }

    #[test]
    fn sdl_entries_roundtrip() {
        let mut s = NodeStores::new(5);
        let o = ObjectId(9);
        let e = SpEntry {
            host: NodeId(4),
            child: NodeId(1),
            holder: NodeId(4),
        };
        s.sdl_add(e, 2, o);
        assert_eq!(s.sdl_get(NodeId(4), o), Some((2, NodeId(1))));
        assert_eq!(s.sdl_get(NodeId(3), o), None);
        assert_eq!(s.total_sdl_entries(), 1);
        s.sdl_remove(e, 2, o);
        assert_eq!(s.sdl_get(NodeId(4), o), None);
        assert_eq!(s.loads()[4], 0);
    }

    #[test]
    fn sdl_supports_multiple_levels_per_host() {
        let mut s = NodeStores::new(3);
        let o = ObjectId(1);
        let a = SpEntry {
            host: NodeId(0),
            child: NodeId(1),
            holder: NodeId(0),
        };
        let b = SpEntry {
            host: NodeId(0),
            child: NodeId(2),
            holder: NodeId(0),
        };
        s.sdl_add(a, 1, o);
        s.sdl_add(b, 3, o);
        assert_eq!(s.loads()[0], 2);
        s.sdl_remove(a, 1, o);
        assert_eq!(s.sdl_get(NodeId(0), o), Some((3, NodeId(2))));
    }

    #[test]
    fn record_proxy_is_bottom_holder() {
        let rec = ObjectRecord {
            trail: vec![
                TrailLevel {
                    holders: vec![NodeId(5)],
                    sp_entries: vec![],
                },
                TrailLevel {
                    holders: vec![NodeId(1), NodeId(2)],
                    sp_entries: vec![],
                },
            ],
        };
        assert_eq!(rec.proxy(), NodeId(5));
    }
}
