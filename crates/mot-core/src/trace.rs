//! Structured operation traces — the observability layer's event schema.
//!
//! Every billed message hop in the suite (MOT climbs and descents, tree
//! climbs and prunes, protocol transmissions, crash handoffs, retries)
//! can emit one [`TraceEvent`] into a [`TraceSink`]. Sinks are attached
//! at tracker construction (`with_sink`); a tracker without a sink pays
//! nothing — the emit helpers branch on `Option<&dyn TraceSink>` and
//! never even construct the event, so a run with tracing disabled is
//! bit-identical to a run of the uninstrumented code.
//!
//! The schema tags each hop with:
//!
//! * the **operation** in progress ([`OpKind`]: publish / move / query /
//!   repair / raw transport),
//! * the **phase** within the operation ([`TracePhase`]: climb, descend,
//!   rollback, prune, SP install/remove, de Bruijn route, SDL jump,
//!   crash handoff, retransmission),
//! * the **ledger** the distance is billed to ([`LedgerKind`]; the
//!   `Repair` and `Retry` accounts are the fault-layer overheads),
//! * the **hierarchy level** touched (tree depth for the baselines),
//! * src/dst node and the billed distance.
//!
//! Aggregators (per-level cost ledgers, hop histograms) live in
//! `mot_sim::metrics`; NDJSON streaming lives behind the `experiments
//! --trace` flag. [`TraceEvent::to_ndjson`] is the one canonical JSON
//! rendering so every consumer writes the same schema.

use crate::object::ObjectId;
use mot_net::NodeId;
use std::cell::RefCell;

/// The operation a traced hop belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// One-time object publication.
    Publish,
    /// A maintenance (move) operation.
    Move,
    /// A location query.
    Query,
    /// Crash repair: proxy handoffs and pointer-path re-publishes.
    Repair,
    /// A raw protocol transmission (message-passing rendering) whose
    /// operation context lives in the payload, not the tracker.
    Transport,
}

impl OpKind {
    /// Stable lowercase label used by NDJSON/JSON exports.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::Publish => "publish",
            OpKind::Move => "move",
            OpKind::Query => "query",
            OpKind::Repair => "repair",
            OpKind::Transport => "transport",
        }
    }
}

/// The cost account a traced hop is billed under.
///
/// `Maintenance`, `Query`, and `Publish` partition the charged traffic
/// of the paper's analysis; `Repair` and `Retry` are the fault-layer
/// overhead accounts (crash handoffs / path re-publishes, and wasted
/// transmissions under the ack/retry transport, respectively).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LedgerKind {
    /// One-time publish traffic (Thm 4.1's `O(D)` account).
    Publish,
    /// Move-driven trail updates (the maintenance cost ratio's account).
    Maintenance,
    /// Query climbs and descents (the query cost ratio's account).
    Query,
    /// Crash handoffs and pointer-path re-publishes.
    Repair,
    /// Wasted transmissions under the ack/retry transport.
    Retry,
    /// Uncharged protocol bookkeeping (special-parent updates, repoints,
    /// query replies) — traffic the paper's ratios exclude.
    Bookkeeping,
}

impl LedgerKind {
    /// Stable lowercase label used by NDJSON/JSON exports.
    pub fn label(&self) -> &'static str {
        match self {
            LedgerKind::Publish => "publish",
            LedgerKind::Maintenance => "maintenance",
            LedgerKind::Query => "query",
            LedgerKind::Repair => "repair",
            LedgerKind::Retry => "retry",
            LedgerKind::Bookkeeping => "bookkeeping",
        }
    }

    /// All ledger kinds, in export order.
    pub fn all() -> [LedgerKind; 6] {
        [
            LedgerKind::Publish,
            LedgerKind::Maintenance,
            LedgerKind::Query,
            LedgerKind::Repair,
            LedgerKind::Retry,
            LedgerKind::Bookkeeping,
        ]
    }
}

/// What a traced hop was doing within its operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePhase {
    /// Upward hop along a detection path (station to station).
    Climb,
    /// Downward hop following detection-list holders toward the proxy.
    Descend,
    /// Reverse walk undoing a meet level's partial additions.
    Rollback,
    /// Downward deletion of a stale trail / tree branch.
    Prune,
    /// Special-parent SDL installation.
    SpInstall,
    /// Special-parent SDL removal.
    SpRemove,
    /// Intra-cluster de Bruijn routing under §5 load balancing.
    LbRoute,
    /// Query jump from a special parent to its guarded child.
    SdlJump,
    /// Crash handoff of a proxied object to the nearest live sensor.
    Handoff,
    /// A wasted transmission (drop, retransmission, duplicate arrival).
    Retransmit,
    /// A protocol message delivery (message-passing rendering).
    Deliver,
    /// A message whose retry budget ran out: recorded lost, never silent.
    Exhausted,
}

impl TracePhase {
    /// Stable lowercase label used by NDJSON/JSON exports.
    pub fn label(&self) -> &'static str {
        match self {
            TracePhase::Climb => "climb",
            TracePhase::Descend => "descend",
            TracePhase::Rollback => "rollback",
            TracePhase::Prune => "prune",
            TracePhase::SpInstall => "sp_install",
            TracePhase::SpRemove => "sp_remove",
            TracePhase::LbRoute => "lb_route",
            TracePhase::SdlJump => "sdl_jump",
            TracePhase::Handoff => "handoff",
            TracePhase::Retransmit => "retransmit",
            TracePhase::Deliver => "deliver",
            TracePhase::Exhausted => "exhausted",
        }
    }
}

/// One billed message hop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// The tracker operation the hop belongs to.
    pub op: OpKind,
    /// What the hop was doing within that operation.
    pub phase: TracePhase,
    /// The cost account the hop is billed under.
    pub ledger: LedgerKind,
    /// The tracked object the operation concerns.
    pub object: ObjectId,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Hierarchy level touched (tree depth for the tree baselines; the
    /// level of the payload for protocol transmissions).
    pub level: u32,
    /// Message distance billed for this hop. The sum of a completed
    /// operation's event distances equals the cost the tracker returned
    /// for it — the invariant the per-level decompositions rest on.
    pub distance: f64,
}

impl TraceEvent {
    /// Canonical one-line JSON rendering (the `--trace` NDJSON schema).
    pub fn to_ndjson(&self) -> String {
        format!(
            "{{\"op\":\"{}\",\"phase\":\"{}\",\"ledger\":\"{}\",\"object\":{},\
             \"src\":{},\"dst\":{},\"level\":{},\"dist\":{}}}",
            self.op.label(),
            self.phase.label(),
            self.ledger.label(),
            self.object.0,
            self.src.0,
            self.dst.0,
            self.level,
            fmt_f64(self.distance),
        )
    }
}

/// Renders an f64 the way every JSON export in the suite does: shortest
/// round-trippable form, so identical runs produce identical bytes.
pub fn fmt_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// A consumer of structured operation traces.
///
/// Methods take `&self` (queries are `&self` on trackers), so sinks use
/// interior mutability. Implementations must not assume events arrive
/// from a single operation at a time in concurrent executions; the
/// one-by-one executors do guarantee it.
pub trait TraceSink {
    /// One billed message hop.
    fn event(&self, ev: &TraceEvent);

    /// An operation ran to completion with total billed cost `cost`
    /// (the sum of the distances of the events emitted since the
    /// previous `op_complete`). Default: ignored.
    fn op_complete(&self, _op: OpKind, _object: ObjectId, _cost: f64) {}
}

/// A sink that keeps every event in memory — the reference consumer for
/// determinism and sum-to-cost tests.
#[derive(Default)]
pub struct MemorySink {
    events: RefCell<Vec<TraceEvent>>,
    ops: RefCell<Vec<(OpKind, ObjectId, f64)>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events seen so far, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }

    /// All completed operations `(op, object, cost)`, in order.
    pub fn ops(&self) -> Vec<(OpKind, ObjectId, f64)> {
        self.ops.borrow().clone()
    }

    /// Sum of event distances billed under `ledger`.
    pub fn ledger_total(&self, ledger: LedgerKind) -> f64 {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.ledger == ledger)
            .map(|e| e.distance)
            .sum()
    }
}

impl TraceSink for MemorySink {
    fn event(&self, ev: &TraceEvent) {
        self.events.borrow_mut().push(*ev);
    }

    fn op_complete(&self, op: OpKind, object: ObjectId, cost: f64) {
        self.ops.borrow_mut().push((op, object, cost));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_schema_is_stable() {
        let ev = TraceEvent {
            op: OpKind::Move,
            phase: TracePhase::Climb,
            ledger: LedgerKind::Maintenance,
            object: ObjectId(3),
            src: NodeId(5),
            dst: NodeId(9),
            level: 2,
            distance: 4.0,
        };
        assert_eq!(
            ev.to_ndjson(),
            "{\"op\":\"move\",\"phase\":\"climb\",\"ledger\":\"maintenance\",\
             \"object\":3,\"src\":5,\"dst\":9,\"level\":2,\"dist\":4.0}"
        );
    }

    #[test]
    fn fractional_distances_round_trip() {
        let ev = TraceEvent {
            op: OpKind::Query,
            phase: TracePhase::Descend,
            ledger: LedgerKind::Query,
            object: ObjectId(0),
            src: NodeId(0),
            dst: NodeId(1),
            level: 0,
            distance: 2.5,
        };
        assert!(ev.to_ndjson().contains("\"dist\":2.5"));
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let s = MemorySink::new();
        for i in 0..3 {
            s.event(&TraceEvent {
                op: OpKind::Publish,
                phase: TracePhase::Climb,
                ledger: LedgerKind::Publish,
                object: ObjectId(0),
                src: NodeId(i),
                dst: NodeId(i + 1),
                level: i,
                distance: 1.0,
            });
        }
        s.op_complete(OpKind::Publish, ObjectId(0), 3.0);
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.events()[2].src, NodeId(2));
        assert_eq!(s.ops(), vec![(OpKind::Publish, ObjectId(0), 3.0)]);
        assert_eq!(s.ledger_total(LedgerKind::Publish), 3.0);
        assert_eq!(s.ledger_total(LedgerKind::Query), 0.0);
    }

    #[test]
    fn labels_are_lowercase_and_distinct() {
        let labels = [
            OpKind::Publish.label(),
            OpKind::Move.label(),
            OpKind::Query.label(),
            OpKind::Repair.label(),
            OpKind::Transport.label(),
        ];
        let mut uniq = labels.to_vec();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), labels.len());
        for l in LedgerKind::all() {
            assert_eq!(l.label(), l.label().to_lowercase());
        }
    }
}
