//! Generation-stamped freelist for route buffers.
//!
//! The message loop's hot allocations are the `Vec<NodeId>` route
//! buffers riding inside [`crate::Payload`]s: down-member lists,
//! level-member lists, delete walks, repoint fan-outs. Handlers retire
//! such a buffer on almost every delivery and mint a new one for the
//! next hop — under a general-purpose allocator that is two malloc
//! round-trips per message. [`RouteArena`] turns the churn into
//! capacity reuse: retired buffers are cleared and parked on a
//! freelist, and later takes pop them instead of allocating.
//!
//! Two properties keep the reuse invisible to the protocol (the
//! invariants of DESIGN.md §16):
//!
//! * **Values never survive recycling.** [`RouteArena::recycle`]
//!   clears the buffer before parking it; a recycled buffer is
//!   indistinguishable from a fresh `Vec::new()` except for its
//!   capacity. The replay/parity suites are the witness — with the
//!   arena [disabled](RouteArena::set_enabled) every take falls back
//!   to fresh allocation, and both modes must produce bit-identical
//!   results.
//! * **No intra-operation aliasing.** Each buffer is stamped with the
//!   operation generation at which it was recycled, and a take only
//!   reuses buffers stamped *before* the current generation (bumped by
//!   [`RouteArena::begin_op`]). A handler bug that recycled a buffer
//!   still referenced by an in-flight message of the same operation
//!   can therefore never observe its own corruption — the buffer sits
//!   out the rest of the operation.

use std::collections::VecDeque;

use mot_net::NodeId;

/// Parked buffers beyond this count are dropped instead of retained,
/// bounding the arena to the high-water concurrency of one operation.
const FREE_CAP: usize = 256;

/// Reuse counters for tests and diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out ([`RouteArena::take`]/[`take_from`](RouteArena::take_from)).
    pub taken: u64,
    /// Takes served from the freelist instead of the allocator.
    pub reused: u64,
    /// Buffers parked by [`RouteArena::recycle`].
    pub recycled: u64,
}

/// A freelist of route buffers with generation-stamped reuse.
///
/// See the [module docs](self) for the invariants. Disabled mode
/// (`set_enabled(false)`) makes every take a fresh allocation and every
/// recycle a drop — the fresh-allocation reference build the churn
/// parity test compares against.
#[derive(Debug)]
pub struct RouteArena {
    /// Parked buffers, each stamped with the generation that retired
    /// it. Recycles push at the back, takes pop from the front, so
    /// stamps are nondecreasing front to back and the front alone
    /// decides reusability — a buffer retired mid-operation never
    /// shadows the older, immediately reusable ones behind it.
    free: VecDeque<(u64, Vec<NodeId>)>,
    generation: u64,
    enabled: bool,
    stats: ArenaStats,
}

impl Default for RouteArena {
    fn default() -> Self {
        RouteArena {
            free: VecDeque::new(),
            generation: 0,
            enabled: true,
            stats: ArenaStats::default(),
        }
    }
}

impl RouteArena {
    /// An empty, enabled arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns reuse on or off. Disabling drops the parked buffers so a
    /// later re-enable starts cold.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.free.clear();
        }
    }

    /// Whether takes may be served from the freelist.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Marks the start of a new tracker operation: buffers recycled
    /// from now on only become reusable at the *next* `begin_op`.
    pub fn begin_op(&mut self) {
        self.generation += 1;
    }

    /// Reuse counters since construction.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// An empty buffer: from the freelist when one from a previous
    /// generation is parked, freshly allocated otherwise.
    pub fn take(&mut self) -> Vec<NodeId> {
        self.stats.taken += 1;
        if self.enabled {
            if let Some(&(stamp, _)) = self.free.front() {
                if stamp < self.generation {
                    self.stats.reused += 1;
                    return self.free.pop_front().expect("checked non-empty").1;
                }
            }
        }
        Vec::new()
    }

    /// [`take`](Self::take), filled with a copy of `src`.
    pub fn take_from(&mut self, src: &[NodeId]) -> Vec<NodeId> {
        let mut buf = self.take();
        buf.extend_from_slice(src);
        buf
    }

    /// Parks a retired buffer for reuse (cleared first; value reuse is
    /// forbidden). Zero-capacity buffers and overflow beyond the cap
    /// are dropped.
    pub fn recycle(&mut self, mut buf: Vec<NodeId>) {
        if !self.enabled || buf.capacity() == 0 || self.free.len() >= FREE_CAP {
            return;
        }
        buf.clear();
        self.stats.recycled += 1;
        self.free.push_back((self.generation, buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_waits_for_the_next_generation() {
        let mut a = RouteArena::new();
        a.begin_op();
        let mut b = a.take();
        b.push(NodeId(7));
        let cap = b.capacity();
        a.recycle(b);
        // Same generation: the parked buffer must sit out.
        assert!(a.take().capacity() < cap.max(1));
        a.begin_op();
        let c = a.take();
        assert_eq!(c.capacity(), cap, "previous-generation buffer reused");
        assert!(c.is_empty(), "recycled values must not survive");
        assert_eq!(a.stats().reused, 1);
    }

    #[test]
    fn mid_op_recycle_does_not_shadow_older_buffers() {
        let mut a = RouteArena::new();
        a.begin_op();
        let (mut x, mut y) = (a.take(), a.take());
        x.push(NodeId(1)); // give both capacity
        y.push(NodeId(2));
        a.recycle(x);
        a.recycle(y);
        a.begin_op();
        // Retire a buffer mid-operation: its same-generation park at the
        // back must not block the still-reusable one at the front.
        let first = a.take();
        assert!(first.capacity() > 0);
        a.recycle(first);
        let second = a.take();
        assert!(second.capacity() > 0, "front buffer was shadowed");
        assert_eq!(a.stats().reused, 2);
    }

    #[test]
    fn disabled_mode_never_reuses() {
        let mut a = RouteArena::new();
        a.set_enabled(false);
        a.begin_op();
        let mut b = a.take();
        b.push(NodeId(1));
        a.recycle(b);
        a.begin_op();
        assert_eq!(a.take().capacity(), 0);
        assert_eq!(a.stats().reused, 0);
        assert_eq!(a.stats().recycled, 0);
    }

    #[test]
    fn take_from_copies_the_source() {
        let mut a = RouteArena::new();
        let src = [NodeId(1), NodeId(2)];
        assert_eq!(a.take_from(&src), src.to_vec());
    }
}
